"""The array-native message fabric: vectorized round delivery.

:class:`~repro.sim.kernel.ExecutionKernel` is the one execution loop of
the whole package -- every surface (scenario, classic, broadcast,
explorer, atlas, soak) rides it -- so its per-round delivery is *the*
hot path of the system.  This module owns that path, in two
byte-identical implementations selected at import:

* **array** (numpy) -- the round's removable-sender decision is a
  single ``(n_receivers, n_senders)`` boolean mask obtained from the
  timing model in one batch call
  (:meth:`~repro.sim.kernel.TimingModel.removed_mask`); delivery, byte
  and loss accounting become mask-sum arithmetic, and receivers whose
  mask rows coincide *share* one canonically-ordered inbox (the
  canonical-base fast path of the dict fabric, generalised from the
  all-ones row to every repeated row).  This is what pushes the kernel
  from n ~ 64 into the hundreds-to-thousands.
* **scalar** -- the pre-array per-receiver dict/set loop, kept verbatim
  as the pure-Python fallback (and as the differential baseline the
  ``benchmarks/test_bench_fabric.py`` array gate measures against).

The scalar path runs when numpy is unavailable or ``REPRO_NO_NUMPY``
is set in the environment; tests flip paths in-process through
:func:`forced_path`.  Both paths are pinned byte-identical to each
other and to the frozen pre-fabric oracles
(:class:`~repro.sim.network.ReferenceRoundEngine`,
:class:`~repro.sim.delay.ReferenceDelaySimulator`) by
``tests/test_fabric.py`` and the ``tests/test_kernel_conformance.py``
grid.

Determinism: mask rows are materialised in ascending receiver order,
survivor inboxes preserve the canonical message order of the dict
fabric, and loss triples are logged in (receiver-ascending,
sender-ascending) order on both paths.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Mapping, Sequence

from repro.core.errors import SimulationError
from repro.core.messages import Inbox, Message
from repro.sim.metrics import RoundDeliveries, payload_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel -> fabric)
    from repro.sim.kernel import ExecutionKernel

try:  # numpy is optional: the scalar fallback keeps the package stdlib-clean
    if os.environ.get("REPRO_NO_NUMPY"):
        np = None
    else:
        import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

#: True when the numpy-backed array path is importable and not disabled.
HAVE_NUMPY = np is not None

#: Module switch consulted per delivery; tests flip it via :func:`forced_path`.
_USE_ARRAY = HAVE_NUMPY

#: The per-kernel payload-size memo is cleared past this many distinct
#: payloads so multi-hour soak runs cannot grow it without bound.
_SIZE_CACHE_LIMIT = 4096


def array_path_enabled() -> bool:
    """True when deliveries currently run through the numpy array path."""
    return _USE_ARRAY


@contextmanager
def forced_path(array: bool):
    """Temporarily force the array or scalar delivery path (tests only).

    Args:
        array: ``True`` for the numpy path, ``False`` for the scalar
            fallback.

    Raises:
        SimulationError: When the array path is requested but numpy is
            unavailable (or disabled via ``REPRO_NO_NUMPY``).
    """
    global _USE_ARRAY
    if array and not HAVE_NUMPY:
        raise SimulationError("numpy is unavailable; cannot force the array path")
    previous = _USE_ARRAY
    _USE_ARRAY = array
    try:
        yield
    finally:
        _USE_ARRAY = previous


def require_numpy():
    """The numpy module, or a :class:`SimulationError` when absent.

    Mask builders call this so a stray array-path query under the
    scalar fallback fails loudly instead of half-working.
    """
    if np is None:
        raise SimulationError(
            "the array fabric needs numpy; install the [fast] extra or "
            "unset REPRO_NO_NUMPY"
        )
    return np


# ----------------------------------------------------------------------
# Mask construction helpers
# ----------------------------------------------------------------------
def new_mask(n_receivers: int, n_senders: int):
    """A fresh all-False ``(n_receivers, n_senders)`` boolean mask."""
    return require_numpy().zeros((n_receivers, n_senders), dtype=bool)


def mask_from_rows(
    removed_of: Callable[[int], Iterable[int]],
    receivers: Sequence[int],
    senders: Sequence[int],
):
    """Build a removal mask row by row from a per-receiver scalar query.

    This is the default-implementation bridge the vectorized protocol
    rests on: :meth:`Topology.blocked_mask
    <repro.sim.topology.Topology.blocked_mask>`,
    :meth:`DropSchedule.dropped_mask
    <repro.sim.partial.DropSchedule.dropped_mask>` and
    :meth:`TimingModel.removed_mask
    <repro.sim.kernel.TimingModel.removed_mask>` all fall back to it, so
    any scalar-only subclass participates in the array fabric unchanged
    (paying the per-receiver loop it always paid, exactly once).

    Args:
        removed_of: ``receiver -> removed sender indices`` scalar query.
        receivers: Receiving process indices (ascending).
        senders: This round's composing senders (ascending).

    Returns:
        The boolean removal mask, ``mask[i, j]`` True when
        ``senders[j]`` misses ``receivers[i]``.
    """
    mask = new_mask(len(receivers), len(senders))
    column = {s: j for j, s in enumerate(senders)}
    for i, q in enumerate(receivers):
        for s in removed_of(q):
            j = column.get(s)
            if j is not None:
                mask[i, j] = True
    return mask


def memoized_payload_size(cache: dict, payload: Hashable) -> int:
    """:func:`~repro.sim.metrics.payload_size`, memoized across rounds.

    Round-based protocols re-send structurally identical payloads for
    many (sender, round) pairs; the ``repr`` walk behind the byte
    accounting is pure, so one computation per distinct payload
    suffices.  The cache key carries the payload's type because equal
    values of different types (``1`` / ``1.0`` / ``True``) have
    different reprs and therefore different sizes.

    Args:
        cache: The per-kernel memo dict (bounded: cleared past
            ``_SIZE_CACHE_LIMIT`` entries).
        payload: A hashable message payload.

    Returns:
        The approximate wire size of ``payload``.
    """
    key = (payload.__class__, payload)
    size = cache.get(key)
    if size is None:
        if len(cache) >= _SIZE_CACHE_LIMIT:
            cache.clear()
        size = payload_size(payload)
        cache[key] = size
    return size


# ----------------------------------------------------------------------
# Round delivery -- path dispatch
# ----------------------------------------------------------------------
def deliver_round(
    kernel: "ExecutionKernel",
    round_no: int,
    payloads: Mapping[int, Hashable],
    emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
) -> RoundDeliveries:
    """Deliver one round through the fabric (array or scalar path).

    Rounds with no removable edge (``timing.active`` False) always run
    the scalar path: it is already optimal there (every receiver without
    an adversary delta shares the one canonical base tuple), so the mask
    machinery would only add overhead.

    Args:
        kernel: The executing kernel (mutated: processes receive
            inboxes, losses are appended when the timing model logs
            them).
        round_no: The current round.
        payloads: This round's correct payloads (ascending index).
        emissions: Normalized Byzantine emissions.

    Returns:
        The round's :class:`~repro.sim.metrics.RoundDeliveries` record.
    """
    if _USE_ARRAY and kernel.timing.active(round_no):
        return _deliver_round_array(kernel, round_no, payloads, emissions)
    return _deliver_round_scalar(kernel, round_no, payloads, emissions)


def _adversary_deltas(
    kernel: "ExecutionKernel",
    emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
) -> dict[int, list[Message]]:
    """Per-recipient adversary message lists (recipient -> messages)."""
    ident_of = kernel.assignment.identifier_of
    additions: dict[int, list[Message]] = {}
    for b, per_recipient in emissions.items():
        ident = ident_of(b)
        for q, batch in per_recipient.items():
            additions.setdefault(q, []).extend(Message(ident, p) for p in batch)
    return additions


# ----------------------------------------------------------------------
# Scalar path: the dict fabric (pure-Python fallback)
# ----------------------------------------------------------------------
def _deliver_round_scalar(
    kernel: "ExecutionKernel",
    round_no: int,
    payloads: Mapping[int, Hashable],
    emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
) -> RoundDeliveries:
    """The per-receiver dict/set delivery loop (canonical base + delta)."""
    numerate = kernel.params.numerate
    ident_of = kernel.assignment.identifier_of
    timing = kernel.timing
    removable = timing.active(round_no)
    log_losses = timing.logs_losses
    size_cache = kernel._size_cache

    # The common base: one message per broadcast, canonicalised once.
    senders = tuple(payloads)  # ascending (composed over sorted indices)
    base = [Message(ident_of(s), payloads[s]) for s in senders]
    sizes = {s: memoized_payload_size(size_cache, payloads[s]) for s in senders}
    base_bytes = sum(sizes.values())
    canonical = Inbox(base, numerate=numerate).messages()

    additions = _adversary_deltas(kernel, emissions)

    correct_deliveries = 0
    correct_bytes = 0
    byz_deliveries = 0
    byz_bytes = 0
    for q in kernel._correct:
        removed = (
            timing.removed_senders(round_no, q, senders)
            if removable else ()
        )
        extra = additions.get(q)
        if not removed and extra is None:
            # Empty delta: share the round's canonical base tuple.
            correct_deliveries += len(senders)
            correct_bytes += base_bytes
            kernel.processes[q].deliver(
                round_no, Inbox.from_canonical(canonical, numerate)
            )
            continue
        if removed:
            if log_losses:
                # Ascending sender order: the shared loss-log contract
                # both delivery paths honour.
                kernel.losses.extend(
                    (round_no, s, q) for s in sorted(removed)
                )
            removed_set = set(removed)
            messages = [
                m for s, m in zip(senders, base) if s not in removed_set
            ]
            correct_deliveries += len(messages)
            correct_bytes += base_bytes - sum(sizes[s] for s in removed_set)
        else:
            messages = list(base)
            correct_deliveries += len(senders)
            correct_bytes += base_bytes
        if extra:
            messages.extend(extra)
            byz_deliveries += len(extra)
            byz_bytes += sum(
                memoized_payload_size(size_cache, m.payload) for m in extra
            )
        kernel.processes[q].deliver(
            round_no, Inbox(messages, numerate=numerate)
        )
    return RoundDeliveries(
        round_no=round_no,
        correct_broadcasts=len(senders),
        correct_deliveries=correct_deliveries,
        byzantine_deliveries=byz_deliveries,
        correct_payload_bytes=correct_bytes,
        byzantine_payload_bytes=byz_bytes,
    )


# ----------------------------------------------------------------------
# Array path: batched masks, shared survivor inboxes
# ----------------------------------------------------------------------
def _deliver_round_array(
    kernel: "ExecutionKernel",
    round_no: int,
    payloads: Mapping[int, Hashable],
    emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
) -> RoundDeliveries:
    """Mask-batched delivery: one `removed_mask` call decides the round.

    The three cost centres of the scalar loop become array work:

    * *removal decisions* -- one ``(receivers, senders)`` boolean mask
      from the timing model instead of a per-receiver Python query;
    * *accounting* -- delivered-edge and byte totals are mask sums
      (``n_recv * n_send - mask.sum()``, ``base_bytes - mask @ sizes``)
      and the loss log is ``np.nonzero`` of the mask, instead of
      per-recipient list comprehensions;
    * *inbox stamping* -- receivers with identical mask rows share one
      survivor inbox, built once per *distinct* row by compressing the
      round's canonical base (the all-False row degenerates to the dict
      fabric's shared-canonical fast path).
    """
    numerate = kernel.params.numerate
    ident_of = kernel.assignment.identifier_of
    timing = kernel.timing
    size_cache = kernel._size_cache

    senders = tuple(payloads)
    n_send = len(senders)
    base = [Message(ident_of(s), payloads[s]) for s in senders]
    sizes = [memoized_payload_size(size_cache, payloads[s]) for s in senders]
    base_bytes = sum(sizes)
    canonical = Inbox(base, numerate=numerate).messages()

    additions = _adversary_deltas(kernel, emissions)

    receivers = kernel._correct
    n_recv = len(receivers)
    mask = timing.removed_mask(round_no, receivers, senders)

    # Accounting: mask-sum arithmetic replaces the per-recipient sums.
    if n_send and n_recv:
        removed_total = int(mask.sum())
        removed_bytes = int(
            (mask * np.asarray(sizes, dtype=np.int64)).sum()
        )
    else:
        removed_total = 0
        removed_bytes = 0
    correct_deliveries = n_recv * n_send - removed_total
    correct_bytes = n_recv * base_bytes - removed_bytes

    if timing.logs_losses and removed_total:
        # Row-major nonzero = receiver-ascending, sender-ascending --
        # the same order the scalar path logs.
        rows, cols = np.nonzero(mask)
        kernel.losses.extend(
            (round_no, senders[c], receivers[r])
            for r, c in zip(rows.tolist(), cols.tolist())
        )

    # Survivor-inbox assembly fragments, precomputed once per round.
    # ``canonical`` is the sorted base; a mask row selects a subsequence
    # of it, so per-row work is one compress pass, not a re-sort.
    if numerate:
        # canonical[j] is base[order[j]]: survivors of a row are the
        # canonical positions whose originating column is kept.
        order = sorted(range(n_send), key=lambda j: base[j].sort_key())
        order_arr = np.asarray(order, dtype=np.intp) if n_send else None
    else:
        # Homonym collapse: a canonical message survives while any of
        # its duplicate-sending columns does.
        columns_of: dict[Message, list[int]] = {}
        for j, m in enumerate(base):
            columns_of.setdefault(m, []).append(j)
        uniq_cols = [
            np.asarray(columns_of[m], dtype=np.intp) for m in canonical
        ]

    zero_inbox = Inbox.from_canonical(canonical, numerate)
    row_inboxes: dict[bytes, Inbox] = {}
    any_removed = mask.any(axis=1) if n_send and n_recv else None

    byz_deliveries = 0
    byz_bytes = 0
    processes = kernel.processes
    for i, q in enumerate(receivers):
        has_removed = bool(any_removed[i]) if any_removed is not None else False
        extra = additions.get(q)
        if extra is None:
            if not has_removed:
                processes[q].deliver(round_no, zero_inbox)
                continue
            row = mask[i]
            key = row.tobytes()
            inbox = row_inboxes.get(key)
            if inbox is None:
                keep = ~row
                if numerate:
                    keep_sorted = keep[order_arr].tolist()
                    survivors = [
                        m for m, k in zip(canonical, keep_sorted) if k
                    ]
                else:
                    survivors = [
                        m for m, cols in zip(canonical, uniq_cols)
                        if keep[cols].any()
                    ]
                inbox = Inbox.from_canonical(tuple(survivors), numerate)
                row_inboxes[key] = inbox
            processes[q].deliver(round_no, inbox)
            continue
        # Adversary-delta receivers: assemble and sort per receiver,
        # exactly as the scalar path does.
        if has_removed:
            keep = (~mask[i]).tolist()
            messages = [m for m, k in zip(base, keep) if k]
        else:
            messages = list(base)
        if extra:
            messages.extend(extra)
            byz_deliveries += len(extra)
            byz_bytes += sum(
                memoized_payload_size(size_cache, m.payload) for m in extra
            )
        processes[q].deliver(round_no, Inbox(messages, numerate=numerate))

    return RoundDeliveries(
        round_no=round_no,
        correct_broadcasts=n_send,
        correct_deliveries=correct_deliveries,
        byzantine_deliveries=byz_deliveries,
        correct_payload_bytes=correct_bytes,
        byzantine_payload_bytes=byz_bytes,
    )
