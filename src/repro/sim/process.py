"""Process abstraction for the round-based simulator.

A *correct* process is an object driven by the network engine in
lock-step rounds:

1. ``compose(round_no)`` returns the payload the process broadcasts
   this round (or ``None`` to stay silent).  Per the paper (Section
   3.2), correct processes send the *same* content to everyone in a
   round without loss of generality -- recipient-specific information is
   encoded inside the payload.
2. ``deliver(round_no, inbox)`` hands the process everything it
   received this round (set or multiset semantics depending on the
   model's numeracy).

A process records at most one decision (the first one); the paper's
algorithms "continue running" after deciding, which the simulator
honours by never stopping a decided process implicitly.

Byzantine behaviour is *not* modelled by subclassing ``Process``: the
adversary object attached to the network speaks for all Byzantine
process slots (see :mod:`repro.sim.adversary`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable

from repro.core.messages import Inbox


class Process(ABC):
    """Base class for deterministic correct-process implementations."""

    def __init__(self, identifier: int, proposal: Hashable = None) -> None:
        self._identifier = int(identifier)
        self._proposal = proposal
        self._decision: Hashable = None
        self._decision_round: int | None = None

    # ------------------------------------------------------------------
    # Identity / proposal / decision bookkeeping
    # ------------------------------------------------------------------
    @property
    def identifier(self) -> int:
        """The authenticated identifier this process sends under."""
        return self._identifier

    @property
    def proposal(self) -> Hashable:
        """The value this process proposed (``None`` for non-proposers)."""
        return self._proposal

    @property
    def decided(self) -> bool:
        return self._decision_round is not None

    @property
    def decision(self) -> Hashable:
        """First decided value, or ``None`` if undecided."""
        return self._decision

    @property
    def decision_round(self) -> int | None:
        """Round of the first decision, or ``None`` if undecided."""
        return self._decision_round

    def record_decision(self, value: Hashable, round_no: int) -> None:
        """Record the first decision; the first decision is final.

        The paper's processes decide once and "continue running the
        algorithm"; decision conditions that fire again later are
        no-ops.  A later condition proposing a *different* value is
        possible only in executions where agreement is already broken
        (e.g. below the solvability bound under the Figure 4 attack);
        it is deliberately ignored here and surfaces in the cross-
        process agreement check instead.
        """
        if self._decision_round is None:
            self._decision = value
            self._decision_round = round_no

    # ------------------------------------------------------------------
    # Round interface driven by the engine
    # ------------------------------------------------------------------
    @abstractmethod
    def compose(self, round_no: int) -> Hashable:
        """Payload to broadcast in ``round_no`` (``None`` = send nothing)."""

    @abstractmethod
    def deliver(self, round_no: int, inbox: Inbox) -> None:
        """Consume the messages received in ``round_no``."""


class SilentProcess(Process):
    """A correct process that never sends and never decides.

    Useful as a placeholder in wiring tests and as the simplest
    demonstration that termination checking catches undecided processes.
    """

    def compose(self, round_no: int) -> Hashable:
        return None

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        pass


class EchoProcess(Process):
    """Diagnostic process: broadcasts a constant tag plus the round number.

    Used by the engine's own test-suite to verify delivery semantics,
    topology filtering and drop schedules without pulling in a real
    agreement algorithm.
    """

    def __init__(self, identifier: int, tag: Hashable = "echo") -> None:
        super().__init__(identifier)
        self.tag = tag
        self.received: dict[int, Inbox] = {}

    def compose(self, round_no: int) -> Hashable:
        return (self.tag, round_no)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        self.received[round_no] = inbox
