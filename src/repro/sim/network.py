"""The round-based network engine, as a kernel specialisation.

The batched message fabric and its execution pipeline live in
:mod:`repro.sim.kernel`; this module keeps the historical entry points:

* :class:`RoundEngine` is the :class:`~repro.sim.kernel.ExecutionKernel`
  with the timing model built from the legacy ``drop_schedule`` /
  ``topology`` constructor arguments (:class:`~repro.sim.kernel.LockStep`
  when both are unset, :class:`~repro.sim.kernel.BasicPsync` otherwise).
  One engine still covers both round-based synchrony models: the
  synchronous model is the partially synchronous model with the
  :class:`~repro.sim.partial.NoDrops` schedule.
* :class:`ReferenceRoundEngine` keeps the pre-fabric per-receiver
  delivery loop as a differential oracle: the equivalence tests pin the
  kernel's traces, inboxes, verdicts and delivery counts against it,
  and ``benchmarks/test_bench_fabric.py`` measures the speedup over it.

Determinism: given identical processes, adversary, schedule and
topology, the engine produces byte-identical traces.  All iteration is
over sorted indices and inboxes are canonically ordered.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.core.identity import IdentityAssignment
from repro.core.messages import Inbox, Message
from repro.core.params import SystemParams
from repro.sim.adversary import Adversary
from repro.sim.kernel import (
    EngineCheckpoint,
    ExecutionKernel,
    timing_model_for,
)
from repro.sim.metrics import RoundDeliveries, payload_size
from repro.sim.partial import DropSchedule, NoDrops
from repro.sim.process import Process
from repro.sim.topology import CompleteTopology, Topology

__all__ = ["EngineCheckpoint", "ReferenceRoundEngine", "RoundEngine"]


class RoundEngine(ExecutionKernel):
    """Drives one execution of the round-based model.

    A thin specialisation of :class:`~repro.sim.kernel.ExecutionKernel`
    keeping the pre-kernel constructor (``drop_schedule``/``topology``
    instead of a :class:`~repro.sim.kernel.TimingModel`) and the
    ``drop_schedule``/``topology`` attributes older callers and the
    reference oracle read.
    """

    def __init__(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        processes: Sequence[Process | None],
        byzantine: Sequence[int] = (),
        adversary: Adversary | None = None,
        drop_schedule: DropSchedule | None = None,
        topology: Topology | None = None,
    ) -> None:
        super().__init__(
            params=params,
            assignment=assignment,
            processes=processes,
            byzantine=byzantine,
            adversary=adversary,
            timing=timing_model_for(drop_schedule, topology),
        )
        self.drop_schedule = drop_schedule if drop_schedule is not None else NoDrops()
        self.topology = topology if topology is not None else CompleteTopology()


class ReferenceRoundEngine(RoundEngine):
    """The pre-fabric delivery loop, kept as a differential oracle.

    Rebuilds and sorts every receiver's inbox from scratch --
    O(n^2 log n) per round -- exactly as the engine did before the
    message fabric landed.  The equivalence tests pin the kernel's
    traces, verdicts, inboxes and delivery counts against this class,
    and ``benchmarks/test_bench_fabric.py`` measures the speedup over
    it.  Not for production use.
    """

    def _deliver_round(
        self,
        round_no: int,
        payloads: Mapping[int, Hashable],
        emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
    ) -> RoundDeliveries:
        correct_deliveries = 0
        correct_bytes = 0
        byz_deliveries = 0
        byz_bytes = 0
        for q in self._correct:
            messages: list[Message] = []
            for sender, payload in payloads.items():
                if sender != q:
                    if not self.topology.delivers(sender, q):
                        continue
                    if self.drop_schedule.drops(round_no, sender, q):
                        continue
                messages.append(
                    Message(self.assignment.identifier_of(sender), payload)
                )
                correct_deliveries += 1
                correct_bytes += payload_size(payload)
            for b, per_recipient in emissions.items():
                ident = self.assignment.identifier_of(b)
                for payload in per_recipient.get(q, ()):
                    messages.append(Message(ident, payload))
                    byz_deliveries += 1
                    byz_bytes += payload_size(payload)
            self.processes[q].deliver(
                round_no, Inbox(messages, numerate=self.params.numerate)
            )
        return RoundDeliveries(
            round_no=round_no,
            correct_broadcasts=len(payloads),
            correct_deliveries=correct_deliveries,
            byzantine_deliveries=byz_deliveries,
            correct_payload_bytes=correct_bytes,
            byzantine_payload_bytes=byz_bytes,
        )
