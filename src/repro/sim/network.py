"""The round-based network engine.

One engine covers both synchrony models: the synchronous model is the
partially synchronous model with the :class:`~repro.sim.partial.NoDrops`
schedule.  Each :meth:`RoundEngine.step` executes one round:

1. every correct process composes its broadcast payload;
2. the adversary -- shown all of this round's correct payloads (it is
   *rushing*) plus full execution history -- emits messages for every
   Byzantine slot, subject to authentication and (optionally) the
   one-message-per-recipient restriction, both enforced here;
3. each correct process receives an :class:`~repro.core.messages.Inbox`
   built from: its own payload (self-delivery is unconditional), the
   payloads of correct in-neighbours not dropped by the schedule, and
   the adversary's messages addressed to it -- as a multiset when the
   model is numerate, a set otherwise;
4. new decisions are collected into the trace.

Determinism: given identical processes, adversary, schedule and
topology, the engine produces byte-identical traces.  All iteration is
over sorted indices and inboxes are canonically ordered.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.core.errors import (
    AdversaryViolation,
    ConfigurationError,
)
from repro.core.identity import IdentityAssignment
from repro.core.messages import Inbox, Message, ensure_hashable
from repro.core.params import SystemParams
from repro.sim.adversary import Adversary, AdversaryView, NullAdversary
from repro.sim.partial import DropSchedule, NoDrops
from repro.sim.process import Process
from repro.sim.topology import CompleteTopology, Topology
from repro.sim.trace import RoundRecord, Trace


class RoundEngine:
    """Drives one execution of the round-based model."""

    def __init__(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        processes: Sequence[Process | None],
        byzantine: Sequence[int] = (),
        adversary: Adversary | None = None,
        drop_schedule: DropSchedule | None = None,
        topology: Topology | None = None,
    ) -> None:
        if assignment.n != params.n:
            raise ConfigurationError(
                f"assignment has {assignment.n} processes, params say {params.n}"
            )
        if len(processes) != params.n:
            raise ConfigurationError(
                f"got {len(processes)} process slots for n={params.n}"
            )
        self.params = params
        self.assignment = assignment
        self.processes: list[Process | None] = list(processes)
        self.byzantine: tuple[int, ...] = tuple(sorted(set(int(b) for b in byzantine)))
        if any(not 0 <= b < params.n for b in self.byzantine):
            raise ConfigurationError(f"byzantine indices out of range: {self.byzantine}")
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.drop_schedule = drop_schedule if drop_schedule is not None else NoDrops()
        self.topology = topology if topology is not None else CompleteTopology()
        self.trace = Trace()
        self.round_no = 0

        byz_set = set(self.byzantine)
        self._correct: tuple[int, ...] = tuple(
            k for k in range(params.n) if k not in byz_set
        )
        for k in self._correct:
            proc = self.processes[k]
            if proc is None:
                raise ConfigurationError(f"correct slot {k} has no process object")
            expected = assignment.identifier_of(k)
            if proc.identifier != expected:
                raise ConfigurationError(
                    f"process at slot {k} claims identifier {proc.identifier}, "
                    f"assignment says {expected}"
                )

        self.adversary.setup(
            params,
            assignment,
            self.byzantine,
            {
                k: self.processes[k].proposal
                for k in self._correct
                if self.processes[k].proposal is not None
            },
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def correct(self) -> tuple[int, ...]:
        """Indices of correct processes, ascending."""
        return self._correct

    def all_correct_decided(self) -> bool:
        return all(self.processes[k].decided for k in self._correct)

    def decisions(self) -> dict[int, Hashable]:
        return {
            k: self.processes[k].decision
            for k in self._correct
            if self.processes[k].decided
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> RoundRecord:
        """Execute one round and return its trace record."""
        r = self.round_no

        # Phase 1: correct processes compose their broadcasts.
        payloads: dict[int, Hashable] = {}
        for k in self._correct:
            payload = self.processes[k].compose(r)
            if payload is not None:
                payloads[k] = ensure_hashable(payload)

        # Phase 2: the (rushing) adversary emits Byzantine messages.
        emissions = self._collect_emissions(payloads)

        # Phase 3: deliver per-recipient inboxes to correct processes.
        decided_before = {
            k: self.processes[k].decided for k in self._correct
        }
        for q in self._correct:
            inbox = self._build_inbox(r, q, payloads, emissions)
            self.processes[q].deliver(r, inbox)

        # Phase 4: record the round.
        decisions = {
            k: self.processes[k].decision
            for k in self._correct
            if self.processes[k].decided and not decided_before[k]
        }
        record = RoundRecord(
            round_no=r,
            payloads=payloads,
            emissions=emissions,
            decisions=decisions,
        )
        self.trace.append(record)
        self.round_no += 1
        return record

    def run(self, max_rounds: int, stop_when_all_decided: bool = True) -> int:
        """Run up to ``max_rounds`` rounds; return the number executed."""
        executed = 0
        for _ in range(max_rounds):
            self.step()
            executed += 1
            if stop_when_all_decided and self.all_correct_decided():
                break
        return executed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _collect_emissions(
        self, payloads: Mapping[int, Hashable]
    ) -> dict[int, dict[int, tuple[Hashable, ...]]]:
        view = AdversaryView(
            round_no=self.round_no,
            params=self.params,
            assignment=self.assignment,
            byzantine=self.byzantine,
            correct_payloads=dict(payloads),
            processes=self.processes,
            trace=self.trace,
        )
        raw = self.adversary.emissions(view)
        byz_set = set(self.byzantine)
        emissions: dict[int, dict[int, tuple[Hashable, ...]]] = {}
        for b, per_recipient in sorted(raw.items()):
            if b not in byz_set:
                raise AdversaryViolation(
                    f"adversary emitted for non-Byzantine slot {b}"
                )
            clean: dict[int, tuple[Hashable, ...]] = {}
            for q, payload_seq in sorted(per_recipient.items()):
                if not 0 <= q < self.params.n:
                    raise AdversaryViolation(f"recipient {q} out of range")
                batch = tuple(ensure_hashable(p) for p in payload_seq)
                if not batch:
                    continue
                if self.params.restricted and len(batch) > 1:
                    raise AdversaryViolation(
                        f"restricted Byzantine slot {b} sent {len(batch)} "
                        f"messages to recipient {q} in round {self.round_no}"
                    )
                clean[q] = batch
            if clean:
                emissions[b] = clean
        return emissions

    def _build_inbox(
        self,
        round_no: int,
        recipient: int,
        payloads: Mapping[int, Hashable],
        emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
    ) -> Inbox:
        messages: list[Message] = []
        for sender, payload in payloads.items():
            if sender == recipient:
                messages.append(
                    Message(self.assignment.identifier_of(sender), payload)
                )
                continue
            if not self.topology.delivers(sender, recipient):
                continue
            if self.drop_schedule.drops(round_no, sender, recipient):
                continue
            messages.append(Message(self.assignment.identifier_of(sender), payload))
        for b, per_recipient in emissions.items():
            ident = self.assignment.identifier_of(b)
            for payload in per_recipient.get(recipient, ()):
                messages.append(Message(ident, payload))
        return Inbox(messages, numerate=self.params.numerate)
