"""The round-based network engine, built around a batched message fabric.

One engine covers both synchrony models: the synchronous model is the
partially synchronous model with the :class:`~repro.sim.partial.NoDrops`
schedule.  Each :meth:`RoundEngine.step` executes one round:

1. every correct process composes its broadcast payload;
2. the adversary -- shown all of this round's correct payloads (it is
   *rushing*) plus full execution history -- emits messages for every
   Byzantine slot, subject to authentication and (optionally) the
   one-message-per-recipient restriction, both enforced here;
3. each correct process receives an :class:`~repro.core.messages.Inbox`
   built from: its own payload (self-delivery is unconditional), the
   payloads of correct in-neighbours not dropped by the schedule, and
   the adversary's messages addressed to it -- as a multiset when the
   model is numerate, a set otherwise;
4. new decisions are collected into the trace.

**The message fabric.**  Because correct processes broadcast, the
inboxes of one round are overwhelmingly shared: on the complete
topology after stabilisation every receiver gets exactly the same
multiset of correct messages.  Delivery therefore materialises the
round's *common base* once -- one :class:`~repro.core.messages.Message`
per broadcast, canonically sorted a single time -- and derives each
receiver's inbox as that base plus a small per-receiver *delta*:
topology cuts (:meth:`Topology.blocked_senders
<repro.sim.topology.Topology.blocked_senders>`), schedule drops
(:meth:`DropSchedule.dropped_senders
<repro.sim.partial.DropSchedule.dropped_senders>`), and adversary
emissions.  Receivers with an empty delta share the base's canonical
tuple directly (:meth:`Inbox.from_canonical
<repro.core.messages.Inbox.from_canonical>`), replacing the old
O(n^2 log n) per-receiver rebuild-and-sort with one O(n log n) sort
per round.  The fabric also counts every edge it delivers, logging a
:class:`~repro.sim.metrics.RoundDeliveries` record per round into
:attr:`RoundEngine.deliveries` -- the exact-cost input of
:func:`~repro.sim.metrics.metrics_from_deliveries`.

:class:`ReferenceRoundEngine` keeps the pre-fabric per-receiver loop as
a differential oracle: equivalence tests and the fabric benchmark pin
the fabric's traces, verdicts and delivery counts against it.

Determinism: given identical processes, adversary, schedule and
topology, the engine produces byte-identical traces.  All iteration is
over sorted indices and inboxes are canonically ordered.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.identity import IdentityAssignment
from repro.core.messages import Inbox, Message, ensure_hashable
from repro.core.params import SystemParams
from repro.sim.adversary import (
    Adversary,
    AdversaryView,
    NullAdversary,
    normalize_emissions,
)
from repro.sim.metrics import RoundDeliveries, payload_size
from repro.sim.partial import DropSchedule, NoDrops
from repro.sim.process import Process
from repro.sim.topology import CompleteTopology, Topology
from repro.sim.trace import RoundRecord, Trace


@dataclass(frozen=True)
class EngineCheckpoint:
    """A restorable snapshot of a :class:`RoundEngine` mid-execution.

    Captures everything the engine mutates round over round: the process
    objects (deep-copied, so later rounds cannot leak into the
    snapshot), the trace records, the delivery log and the round
    counter.  Static configuration (params, assignment, topology, drop
    schedule) is shared with the live engine, and **adversary state is
    deliberately not captured**: stateful adversaries are owned by the
    caller (the strategy explorer scripts its adversary externally and
    checkpoints its own ghost instances).

    A checkpoint is immutable and reusable: :meth:`RoundEngine.restore`
    copies *out* of it, so one snapshot can seed any number of branches.
    """

    round_no: int
    processes: tuple["Process | None", ...]
    trace_records: tuple
    deliveries: tuple[RoundDeliveries, ...]


class RoundEngine:
    """Drives one execution of the round-based model."""

    def __init__(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        processes: Sequence[Process | None],
        byzantine: Sequence[int] = (),
        adversary: Adversary | None = None,
        drop_schedule: DropSchedule | None = None,
        topology: Topology | None = None,
    ) -> None:
        if assignment.n != params.n:
            raise ConfigurationError(
                f"assignment has {assignment.n} processes, params say {params.n}"
            )
        if len(processes) != params.n:
            raise ConfigurationError(
                f"got {len(processes)} process slots for n={params.n}"
            )
        self.params = params
        self.assignment = assignment
        self.processes: list[Process | None] = list(processes)
        self.byzantine: tuple[int, ...] = tuple(sorted(set(int(b) for b in byzantine)))
        if any(not 0 <= b < params.n for b in self.byzantine):
            raise ConfigurationError(f"byzantine indices out of range: {self.byzantine}")
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.drop_schedule = drop_schedule if drop_schedule is not None else NoDrops()
        self.topology = topology if topology is not None else CompleteTopology()
        self.trace = Trace()
        #: Exact per-round delivery log (one entry per executed round).
        self.deliveries: list[RoundDeliveries] = []
        self.round_no = 0

        byz_set = set(self.byzantine)
        self._correct: tuple[int, ...] = tuple(
            k for k in range(params.n) if k not in byz_set
        )
        for k in self._correct:
            proc = self.processes[k]
            if proc is None:
                raise ConfigurationError(f"correct slot {k} has no process object")
            expected = assignment.identifier_of(k)
            if proc.identifier != expected:
                raise ConfigurationError(
                    f"process at slot {k} claims identifier {proc.identifier}, "
                    f"assignment says {expected}"
                )

        self.adversary.setup(
            params,
            assignment,
            self.byzantine,
            {
                k: self.processes[k].proposal
                for k in self._correct
                if self.processes[k].proposal is not None
            },
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def correct(self) -> tuple[int, ...]:
        """Indices of correct processes, ascending."""
        return self._correct

    def all_correct_decided(self) -> bool:
        return all(self.processes[k].decided for k in self._correct)

    def decisions(self) -> dict[int, Hashable]:
        return {
            k: self.processes[k].decision
            for k in self._correct
            if self.processes[k].decided
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def compose_round(self) -> dict[int, Hashable]:
        """Phase 1 of a round: every correct process composes its broadcast.

        Mutates process state (``compose`` may queue protocol-internal
        work), so it must be called exactly once per round, followed by
        :meth:`finish_round`.  Split out of :meth:`step` so callers that
        need this round's correct payloads *before* choosing Byzantine
        emissions -- the bounded strategy explorer branching over an
        emission alphabet derived from them -- can interpose between the
        phases.

        Returns:
            ``correct index -> payload`` for this round (silent
            processes absent), in ascending index order.
        """
        r = self.round_no
        payloads: dict[int, Hashable] = {}
        for k in self._correct:
            payload = self.processes[k].compose(r)
            if payload is not None:
                payloads[k] = ensure_hashable(payload)
        return payloads

    def finish_round(
        self,
        payloads: Mapping[int, Hashable],
        raw_emissions: Mapping[int, Mapping[int, Sequence[Hashable]]] | None = None,
    ) -> RoundRecord:
        """Phases 2-4 of a round: emissions, delivery, trace record.

        Args:
            payloads: The :meth:`compose_round` result for this round.
            raw_emissions: Byzantine emissions to deliver instead of
                consulting the attached adversary.  They pass through
                the same :func:`~repro.sim.adversary.normalize_emissions`
                model-rule enforcement either way.

        Returns:
            The appended :class:`~repro.sim.trace.RoundRecord`.
        """
        r = self.round_no

        # Phase 2: the (rushing) adversary emits Byzantine messages.
        if raw_emissions is None:
            emissions = self._collect_emissions(payloads)
        else:
            emissions = normalize_emissions(
                self.params, self.byzantine, raw_emissions, r
            )

        # Phase 3: deliver per-recipient inboxes to correct processes.
        decided_before = {
            k: self.processes[k].decided for k in self._correct
        }
        deliveries = self._deliver_round(r, payloads, emissions)

        # Phase 4: record the round.
        decisions = {
            k: self.processes[k].decision
            for k in self._correct
            if self.processes[k].decided and not decided_before[k]
        }
        record = RoundRecord(
            round_no=r,
            payloads=dict(payloads),
            emissions=emissions,
            decisions=decisions,
        )
        self.trace.append(record)
        self.deliveries.append(deliveries)
        self.round_no += 1
        return record

    def step(self) -> RoundRecord:
        """Execute one round and return its trace record."""
        return self.finish_round(self.compose_round())

    def run(self, max_rounds: int, stop_when_all_decided: bool = True) -> int:
        """Run up to ``max_rounds`` rounds; return the number executed."""
        executed = 0
        for _ in range(max_rounds):
            self.step()
            executed += 1
            if stop_when_all_decided and self.all_correct_decided():
                break
        return executed

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> EngineCheckpoint:
        """Snapshot the mutable engine state for later :meth:`restore`.

        Process objects are deep-copied; trace records and delivery
        records are frozen dataclasses, so sharing their tuples is safe.
        The attached adversary is *not* captured -- callers that branch
        executions (the strategy explorer) either use stateless scripted
        adversaries or checkpoint their adversary state themselves.

        Returns:
            An immutable, reusable :class:`EngineCheckpoint`.
        """
        return EngineCheckpoint(
            round_no=self.round_no,
            processes=tuple(copy.deepcopy(self.processes)),
            trace_records=self.trace.snapshot(),
            deliveries=tuple(self.deliveries),
        )

    def restore(self, checkpoint: EngineCheckpoint) -> None:
        """Rewind the engine to a :meth:`checkpoint` snapshot.

        The checkpoint itself is left untouched (its processes are
        deep-copied back out), so the same snapshot can seed any number
        of divergent continuations -- the primitive the bounded strategy
        explorer's depth-first search is built on.

        Args:
            checkpoint: A snapshot taken from *this* engine (snapshots
                carry no configuration, so restoring one from a
                differently-configured engine is undefined).
        """
        self.round_no = checkpoint.round_no
        self.processes = list(copy.deepcopy(checkpoint.processes))
        self.trace.restore(checkpoint.trace_records)
        self.deliveries = list(checkpoint.deliveries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _collect_emissions(
        self, payloads: Mapping[int, Hashable]
    ) -> dict[int, dict[int, tuple[Hashable, ...]]]:
        view = AdversaryView(
            round_no=self.round_no,
            params=self.params,
            assignment=self.assignment,
            byzantine=self.byzantine,
            correct_payloads=dict(payloads),
            processes=self.processes,
            trace=self.trace,
        )
        raw = self.adversary.emissions(view)
        return normalize_emissions(self.params, self.byzantine, raw, self.round_no)

    def _deliver_round(
        self,
        round_no: int,
        payloads: Mapping[int, Hashable],
        emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
    ) -> RoundDeliveries:
        """Deliver one round through the batched message fabric."""
        numerate = self.params.numerate
        ident_of = self.assignment.identifier_of
        topology = self.topology
        schedule = self.drop_schedule
        drops_possible = schedule.active(round_no)

        # The common base: one message per broadcast, canonicalised once.
        senders = tuple(payloads)  # ascending (composed over sorted indices)
        base = [Message(ident_of(s), payloads[s]) for s in senders]
        sizes = {s: payload_size(payloads[s]) for s in senders}
        base_bytes = sum(sizes.values())
        canonical = Inbox(base, numerate=numerate).messages()

        # Adversary delta: recipient -> delivered messages.
        additions: dict[int, list[Message]] = {}
        for b, per_recipient in emissions.items():
            ident = ident_of(b)
            for q, batch in per_recipient.items():
                additions.setdefault(q, []).extend(
                    Message(ident, p) for p in batch
                )

        correct_deliveries = 0
        correct_bytes = 0
        byz_deliveries = 0
        byz_bytes = 0
        for q in self._correct:
            blocked = topology.blocked_senders(q, senders)
            dropped = (
                schedule.dropped_senders(round_no, q, senders)
                if drops_possible else ()
            )
            extra = additions.get(q)
            if not blocked and not dropped and extra is None:
                # Empty delta: share the round's canonical base tuple.
                correct_deliveries += len(senders)
                correct_bytes += base_bytes
                self.processes[q].deliver(
                    round_no, Inbox.from_canonical(canonical, numerate)
                )
                continue
            removed = set(blocked)
            removed.update(dropped)
            if removed:
                messages = [
                    m for s, m in zip(senders, base) if s not in removed
                ]
                correct_deliveries += len(messages)
                correct_bytes += base_bytes - sum(sizes[s] for s in removed)
            else:
                messages = list(base)
                correct_deliveries += len(senders)
                correct_bytes += base_bytes
            if extra:
                messages.extend(extra)
                byz_deliveries += len(extra)
                byz_bytes += sum(payload_size(m.payload) for m in extra)
            self.processes[q].deliver(
                round_no, Inbox(messages, numerate=numerate)
            )
        return RoundDeliveries(
            round_no=round_no,
            correct_broadcasts=len(senders),
            correct_deliveries=correct_deliveries,
            byzantine_deliveries=byz_deliveries,
            correct_payload_bytes=correct_bytes,
            byzantine_payload_bytes=byz_bytes,
        )


class ReferenceRoundEngine(RoundEngine):
    """The pre-fabric delivery loop, kept as a differential oracle.

    Rebuilds and sorts every receiver's inbox from scratch --
    O(n^2 log n) per round -- exactly as the engine did before the
    message fabric landed.  The equivalence tests pin the fabric's
    traces, verdicts, inboxes and delivery counts against this class,
    and ``benchmarks/test_bench_fabric.py`` measures the speedup over
    it.  Not for production use.
    """

    def _deliver_round(
        self,
        round_no: int,
        payloads: Mapping[int, Hashable],
        emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
    ) -> RoundDeliveries:
        correct_deliveries = 0
        correct_bytes = 0
        byz_deliveries = 0
        byz_bytes = 0
        for q in self._correct:
            messages: list[Message] = []
            for sender, payload in payloads.items():
                if sender != q:
                    if not self.topology.delivers(sender, q):
                        continue
                    if self.drop_schedule.drops(round_no, sender, q):
                        continue
                messages.append(
                    Message(self.assignment.identifier_of(sender), payload)
                )
                correct_deliveries += 1
                correct_bytes += payload_size(payload)
            for b, per_recipient in emissions.items():
                ident = self.assignment.identifier_of(b)
                for payload in per_recipient.get(q, ()):
                    messages.append(Message(ident, payload))
                    byz_deliveries += 1
                    byz_bytes += payload_size(payload)
            self.processes[q].deliver(
                round_no, Inbox(messages, numerate=self.params.numerate)
            )
        return RoundDeliveries(
            round_no=round_no,
            correct_broadcasts=len(payloads),
            correct_deliveries=correct_deliveries,
            byzantine_deliveries=byz_deliveries,
            correct_payload_bytes=correct_bytes,
            byzantine_payload_bytes=byz_bytes,
        )
