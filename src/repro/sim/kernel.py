"""The unified execution kernel: one message fabric, pluggable timing.

The paper's model section (following Dwork--Lynch--Stockmeyer) treats
three formulations of its communication model as equivalent: lock-step
synchronous rounds, the *basic* partially synchronous model (lock-step
rounds with finitely many message losses), and the delay-based models
(per-message delivery delays bounded by ``delta`` from some global
stabilisation tick on).  This module makes that equivalence an
*implementation* fact: every formulation executes through the same
:class:`ExecutionKernel` -- the batched message fabric -- and differs
only in the attached :class:`TimingModel`, which answers one question
per round and receiver: *which correct broadcasts does this receiver
not get?*

* :class:`LockStep` -- the synchronous model: nothing is ever lost.
* :class:`BasicPsync` -- the DLS basic model: a
  :class:`~repro.sim.partial.DropSchedule` loses finitely many
  messages and a :class:`~repro.sim.topology.Topology` may cut links.
* :class:`DelayBased` -- the delay formulations: round ``r`` occupies
  the tick window ``[r*delta, (r+1)*delta)``; a message whose
  policy-assigned delay lands it outside its window is *lost*, which is
  exactly the basic-model loss the paper's equivalence argument
  describes.  The per-message tick loop of the legacy
  ``DelayRoundSimulator`` is replaced by per-round late-delta stamping
  on the fabric, and the policy's ``max_late_tick`` contract lets
  punctual rounds skip delay evaluation entirely -- the delay models
  inherit the fabric's shared-canonical-base fast path.

**The message fabric.**  Each :meth:`ExecutionKernel.step` executes one
round: correct processes compose broadcasts; the (rushing) adversary
emits for every Byzantine slot; delivery materialises the round's
*common base* once -- one :class:`~repro.core.messages.Message` per
broadcast, canonically sorted a single time -- and derives each
receiver's inbox as that base minus the timing model's removals plus
the adversary's per-receiver delta.  Receivers with an empty delta
share the base's canonical tuple directly
(:meth:`Inbox.from_canonical <repro.core.messages.Inbox.from_canonical>`).
The fabric counts every edge it delivers into
:attr:`ExecutionKernel.deliveries` -- the exact-cost input of
:func:`~repro.sim.metrics.metrics_from_deliveries` -- and, when the
timing model logs losses (:class:`DelayBased`), records every removed
edge into :attr:`ExecutionKernel.losses` as a ``(round, sender,
recipient)`` basic-model loss.  Delivery itself lives in
:mod:`repro.sim.fabric`, in two byte-identical implementations: a
numpy array path batching each round's removals into one
``(receivers, senders)`` mask (:meth:`TimingModel.removed_mask`), and
the pure-Python per-receiver fallback.

Determinism: given identical processes, adversary and timing model,
the kernel produces byte-identical traces.  All iteration is over
sorted indices and inboxes are canonically ordered.

Compatibility shims: :class:`repro.sim.network.RoundEngine` is the
kernel with a :class:`BasicPsync`/:class:`LockStep` model built from
its legacy ``drop_schedule``/``topology`` arguments, and
:class:`repro.sim.delay.DelayRoundSimulator` is a deprecated wrapper
over the kernel with a :class:`DelayBased` model.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

from repro.core.errors import ConfigurationError, SimulationError
from repro.core.identity import IdentityAssignment
from repro.core.messages import ensure_hashable
from repro.core.params import SystemParams
from repro.sim import fabric
from repro.sim.adversary import (
    Adversary,
    AdversaryView,
    NullAdversary,
    normalize_emissions,
)
from repro.sim.metrics import RoundDeliveries
from repro.sim.partial import DropSchedule, NoDrops
from repro.sim.process import Process
from repro.sim.topology import CompleteTopology, Topology
from repro.sim.trace import RoundRecord, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (delay -> kernel)
    from repro.sim.delay import DelayPolicy


# ----------------------------------------------------------------------
# Timing models
# ----------------------------------------------------------------------
class TimingModel(ABC):
    """Where a round's correct-to-correct message removals come from.

    A timing model is stateless with respect to the kernel: the same
    instance can drive any number of executions, and everything the
    kernel mutates (trace, losses, delivery log) lives on the kernel.
    The contract mirrors the message fabric's delta queries:
    :meth:`active` gates the per-receiver work (an inactive round takes
    the shared-canonical-base fast path for every receiver without an
    adversary delta) and :meth:`removed_senders` names the broadcasts a
    receiver does not get.
    """

    #: When True the kernel records every removed edge into
    #: :attr:`ExecutionKernel.losses` -- the delay models' executable
    #: witness that a late arrival is a basic-model loss.
    logs_losses: bool = False

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable description of the model."""

    def active(self, round_no: int) -> bool:
        """True when any correct-to-correct edge may be removed this round.

        Args:
            round_no: The current round.

        Returns:
            Whether the kernel must run per-receiver removal queries.
            ``False`` is a promise that :meth:`removed_senders` would
            return ``()`` for every receiver.
        """
        return False

    def removed_senders(
        self, round_no: int, recipient: int, senders: Sequence[int]
    ) -> tuple[int, ...]:
        """The subset of ``senders`` whose broadcast misses ``recipient``.

        Self-delivery is never removed (a process's message to itself
        does not traverse the network), so the recipient is never
        reported.  The result carries no duplicates.

        Args:
            round_no: The current round.
            recipient: The receiving process index.
            senders: This round's composing senders (ascending).

        Returns:
            The removed senders.
        """
        return ()

    def removed_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        """The round's removals as one ``(receivers, senders)`` bool mask.

        The array fabric's batch query: ``mask[i, j]`` is True when
        ``senders[j]``'s broadcast misses ``receivers[i]`` this round.
        The default bridges to :meth:`removed_senders` row by row, so
        scalar-only models participate in the array path unchanged;
        models whose removal structure is expressible as array ops
        (:class:`BasicPsync` over the vectorized topology/drop-schedule
        masks, :class:`DelayBased` over the policy's delay matrix)
        override it.  Only called on active rounds under the numpy
        path -- self-delivery must never be reported, exactly as in
        :meth:`removed_senders`.

        Args:
            round_no: The current round.
            receivers: The correct receiving indices (ascending).
            senders: This round's composing senders (ascending).

        Returns:
            A fresh, writable numpy bool array of shape
            ``(len(receivers), len(senders))``.
        """
        return fabric.mask_from_rows(
            lambda q: self.removed_senders(round_no, q, senders),
            receivers,
            senders,
        )

    def ticks_executed(self, rounds: int) -> int:
        """Network ticks consumed by ``rounds`` executed rounds.

        Args:
            rounds: Number of rounds the kernel executed.

        Returns:
            The tick count -- one tick per round for the round-granular
            models; delay models scale by their ``delta`` window.
        """
        return rounds


class LockStep(TimingModel):
    """The synchronous model: lock-step rounds, nothing is ever lost."""

    def describe(self) -> str:
        return "lock-step synchronous rounds"

    def __repr__(self) -> str:
        return "LockStep()"


class BasicPsync(TimingModel):
    """The DLS basic model: drop-schedule losses plus topology cuts.

    ``drop_schedule`` loses finitely many correct-to-correct messages
    before its stabilisation round; ``topology`` may cut links
    permanently (the Figure 1 scenario wiring).  With the defaults
    (``NoDrops`` on the complete topology) this degenerates to
    :class:`LockStep` behaviour.
    """

    def __init__(
        self,
        drop_schedule: DropSchedule | None = None,
        topology: Topology | None = None,
    ) -> None:
        self.drop_schedule = drop_schedule if drop_schedule is not None else NoDrops()
        self.topology = topology if topology is not None else CompleteTopology()
        self._complete = isinstance(self.topology, CompleteTopology)

    def describe(self) -> str:
        return (
            f"basic partial synchrony (gst={self.drop_schedule.gst}, "
            f"{self.topology!r})"
        )

    def active(self, round_no: int) -> bool:
        return (not self._complete) or self.drop_schedule.active(round_no)

    def removed_senders(
        self, round_no: int, recipient: int, senders: Sequence[int]
    ) -> tuple[int, ...]:
        blocked = self.topology.blocked_senders(recipient, senders)
        if not self.drop_schedule.active(round_no):
            return blocked
        dropped = self.drop_schedule.dropped_senders(round_no, recipient, senders)
        if not dropped:
            return blocked
        if not blocked:
            return dropped
        merged = set(blocked)
        return blocked + tuple(s for s in dropped if s not in merged)

    def removed_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        mask = self.topology.blocked_mask(receivers, senders)
        if self.drop_schedule.active(round_no):
            mask |= self.drop_schedule.dropped_mask(
                round_no, receivers, senders
            )
        return mask

    def __repr__(self) -> str:
        return f"BasicPsync({self.drop_schedule!r}, {self.topology!r})"


class DelayBased(TimingModel):
    """Delay-based partial synchrony on the fabric: tick windows per round.

    Round ``r`` occupies ticks ``[r*delta, (r+1)*delta)``.  Every
    broadcast is sent at the window's first tick; the attached
    :class:`~repro.sim.delay.DelayPolicy` assigns each ``(sender,
    recipient)`` edge a delay, and an edge whose delay is ``>= delta``
    arrives outside the window -- it is removed from the round inbox
    and logged as a basic-model loss (``logs_losses``).  The policy's
    ``max_late_tick`` contract -- no send from that tick on may exceed
    ``delta`` -- lets every later round skip delay evaluation entirely
    and take the fabric's shared-canonical-base fast path: the
    finiteness witness of the paper's equivalence argument doubles as
    the hot-path gate.
    """

    logs_losses = True

    def __init__(self, policy: "DelayPolicy") -> None:
        for attr in ("delta", "delay", "max_late_tick"):
            if not hasattr(policy, attr):
                raise ConfigurationError(
                    f"delay policy {policy!r} lacks {attr!r}; expected a "
                    f"repro.sim.delay.DelayPolicy"
                )
        self.policy = policy

    def describe(self) -> str:
        return (
            f"delay-based (delta={self.policy.delta}, "
            f"max_late_tick={self.policy.max_late_tick()})"
        )

    def active(self, round_no: int) -> bool:
        # A send at tick r*delta can only exceed delta while the policy
        # still admits lateness; from max_late_tick on, every delay is
        # within the window and the round is punctual by contract.
        return round_no * self.policy.delta < self.policy.max_late_tick()

    def removed_senders(
        self, round_no: int, recipient: int, senders: Sequence[int]
    ) -> tuple[int, ...]:
        policy = self.policy
        delta = policy.delta
        send_tick = round_no * delta
        removed = []
        for s in senders:
            if s == recipient:
                continue  # self-delivery never traverses the network
            delay = policy.delay(send_tick, s, recipient)
            if delay < 0:
                raise SimulationError("negative delay from policy")
            if delay >= delta:
                removed.append(s)
        return tuple(removed)

    def removed_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        np = fabric.require_numpy()
        policy = self.policy
        delta = policy.delta
        delays = policy.delay_matrix(round_no * delta, receivers, senders)
        if (delays < 0).any():
            raise SimulationError("negative delay from policy")
        mask = delays >= delta
        if mask.any():
            # Self-delivery never traverses the network; guard against
            # policies whose delay matrix fills the diagonal anyway.
            recv = np.asarray(receivers, dtype=np.int64)
            send = np.asarray(senders, dtype=np.int64)
            mask &= recv[:, None] != send[None, :]
        return mask

    def ticks_executed(self, rounds: int) -> int:
        return rounds * self.policy.delta

    def __repr__(self) -> str:
        return f"DelayBased({self.policy!r})"


class ComposedTiming(TimingModel):
    """The union of several timing models' removals, as one model.

    A surface with *structural* message removals -- the Figure 1
    scenario's directed view wiring -- composes them with a caller's
    timing model by stacking both here: a round is active when any
    layer is active, and a broadcast is removed for a receiver when any
    layer removes it (first-seen order, no duplicates).  ``losses`` are
    logged when any layer logs them, and the tick count is the maximum
    over the layers (a round occupies the widest layer's window).

    Args:
        models: The stacked timing models, queried in order.

    Raises:
        ConfigurationError: When no model is given (an empty
            composition has no defined tick semantics; use
            :class:`LockStep` explicitly).
    """

    def __init__(self, *models: TimingModel) -> None:
        if not models:
            raise ConfigurationError(
                "ComposedTiming needs at least one timing model"
            )
        self.models: tuple[TimingModel, ...] = tuple(models)
        self.logs_losses = any(m.logs_losses for m in self.models)

    def describe(self) -> str:
        return " + ".join(m.describe() for m in self.models)

    def active(self, round_no: int) -> bool:
        return any(m.active(round_no) for m in self.models)

    def removed_senders(
        self, round_no: int, recipient: int, senders: Sequence[int]
    ) -> tuple[int, ...]:
        removed: list[int] = []
        seen: set[int] = set()
        for model in self.models:
            if not model.active(round_no):
                continue
            for s in model.removed_senders(round_no, recipient, senders):
                if s not in seen:
                    seen.add(s)
                    removed.append(s)
        return tuple(removed)

    def removed_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        mask = fabric.new_mask(len(receivers), len(senders))
        for model in self.models:
            if model.active(round_no):
                mask |= model.removed_mask(round_no, receivers, senders)
        return mask

    def ticks_executed(self, rounds: int) -> int:
        return max(m.ticks_executed(rounds) for m in self.models)

    def __repr__(self) -> str:
        return f"ComposedTiming{self.models!r}"


def timing_model_for(
    drop_schedule: DropSchedule | None = None,
    topology: Topology | None = None,
) -> TimingModel:
    """Build the timing model the legacy engine arguments describe.

    Args:
        drop_schedule: Optional basic-model drop schedule.
        topology: Optional link topology.

    Returns:
        :class:`LockStep` when both arguments are unset, else the
        :class:`BasicPsync` model wrapping them.
    """
    if drop_schedule is None and topology is None:
        return LockStep()
    return BasicPsync(drop_schedule, topology)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineCheckpoint:
    """A restorable snapshot of an :class:`ExecutionKernel` mid-execution.

    Captures everything the kernel mutates round over round: the process
    objects, the trace records, the delivery log, the loss log and the
    round counter.  Static configuration (params, assignment, timing
    model) is shared with the live kernel, and **adversary state is
    deliberately not captured**: stateful adversaries are owned by the
    caller (the strategy explorer scripts its adversary externally and
    checkpoints its own ghost instances).

    Process snapshots are copy-on-write: :meth:`ExecutionKernel.checkpoint`
    freezes the kernel's process list by *reference* and the kernel
    deep-copies it only when (and if) the next round mutates process
    state, so a checkpoint/restore round-trip costs one copy instead of
    two -- the explorer-DFS hotspot.  The snapshot itself is frozen:
    later rounds never leak into it, and one snapshot can seed any
    number of divergent branches.
    """

    round_no: int
    processes: tuple["Process | None", ...]
    trace_records: tuple
    deliveries: tuple[RoundDeliveries, ...]
    losses: tuple[tuple[int, int, int], ...] = ()


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------
class ExecutionKernel:
    """Drives one execution of the round model under a timing model.

    Each :meth:`step` executes one round:

    1. every correct process composes its broadcast payload;
    2. the adversary -- shown all of this round's correct payloads (it
       is *rushing*) plus full execution history -- emits messages for
       every Byzantine slot, subject to authentication and (optionally)
       the one-message-per-recipient restriction, both enforced here;
    3. each correct process receives an
       :class:`~repro.core.messages.Inbox` built from: its own payload
       (self-delivery is unconditional), the payloads of correct
       senders the timing model delivers, and the adversary's messages
       addressed to it -- as a multiset when the model is numerate, a
       set otherwise;
    4. new decisions are collected into the trace.

    Args:
        params: The system parameters (fix ``n`` and the model flags).
        assignment: The identifier assignment (must agree with ``n``).
        processes: One :class:`~repro.sim.process.Process` per correct
            slot, ``None`` in Byzantine slots.
        byzantine: Byzantine slot indices.
        adversary: The Byzantine strategy (defaults to silence).
        timing: The timing model (defaults to :class:`LockStep`).

    Raises:
        ConfigurationError: On any structural mismatch -- wrong process
            count, out-of-range Byzantine indices, a missing correct
            process object, or a process claiming an identifier the
            assignment does not give its slot.
    """

    def __init__(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        processes: Sequence[Process | None],
        byzantine: Sequence[int] = (),
        adversary: Adversary | None = None,
        timing: TimingModel | None = None,
    ) -> None:
        if assignment.n != params.n:
            raise ConfigurationError(
                f"assignment has {assignment.n} processes, params say {params.n}"
            )
        if len(processes) != params.n:
            raise ConfigurationError(
                f"got {len(processes)} process slots for n={params.n}"
            )
        self.params = params
        self.assignment = assignment
        self.processes: list[Process | None] = list(processes)
        self.byzantine: tuple[int, ...] = tuple(sorted(set(int(b) for b in byzantine)))
        if any(not 0 <= b < params.n for b in self.byzantine):
            raise ConfigurationError(f"byzantine indices out of range: {self.byzantine}")
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.timing = timing if timing is not None else LockStep()
        self.trace = Trace()
        #: Exact per-round delivery log (one entry per executed round).
        self.deliveries: list[RoundDeliveries] = []
        #: ``(round, sender, recipient)`` removals logged by timing
        #: models with ``logs_losses`` -- the delay models' basic-model
        #: loss set, in (round, recipient, sender-order) order.
        self.losses: list[tuple[int, int, int]] = []
        self.round_no = 0
        #: True while ``self.processes`` is aliased by a live
        #: :class:`EngineCheckpoint`; the next mutation deep-copies
        #: first (copy-on-write; see :meth:`checkpoint`).
        self._processes_shared = False
        #: Per-kernel payload-size memo (see
        #: :func:`repro.sim.fabric.memoized_payload_size`).
        self._size_cache: dict = {}

        byz_set = set(self.byzantine)
        self._correct: tuple[int, ...] = tuple(
            k for k in range(params.n) if k not in byz_set
        )
        for k in self._correct:
            proc = self.processes[k]
            if proc is None:
                raise ConfigurationError(f"correct slot {k} has no process object")
            expected = assignment.identifier_of(k)
            if proc.identifier != expected:
                raise ConfigurationError(
                    f"process at slot {k} claims identifier {proc.identifier}, "
                    f"assignment says {expected}"
                )

        self.adversary.setup(
            params,
            assignment,
            self.byzantine,
            {
                k: self.processes[k].proposal
                for k in self._correct
                if self.processes[k].proposal is not None
            },
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def correct(self) -> tuple[int, ...]:
        """Indices of correct processes, ascending."""
        return self._correct

    def all_correct_decided(self) -> bool:
        """True when every correct process has decided."""
        return all(self.processes[k].decided for k in self._correct)

    def decisions(self) -> dict[int, Hashable]:
        """Decisions so far.

        Returns:
            ``correct index -> decided value`` for the correct
            processes that have decided (undecided slots absent).
        """
        return {
            k: self.processes[k].decision
            for k in self._correct
            if self.processes[k].decided
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def compose_round(self) -> dict[int, Hashable]:
        """Phase 1 of a round: every correct process composes its broadcast.

        Mutates process state (``compose`` may queue protocol-internal
        work), so it must be called exactly once per round, followed by
        :meth:`finish_round`.  Split out of :meth:`step` so callers that
        need this round's correct payloads *before* choosing Byzantine
        emissions -- the bounded strategy explorer branching over an
        emission alphabet derived from them -- can interpose between the
        phases.

        Returns:
            ``correct index -> payload`` for this round (silent
            processes absent), in ascending index order.
        """
        self._own_processes()
        r = self.round_no
        payloads: dict[int, Hashable] = {}
        for k in self._correct:
            payload = self.processes[k].compose(r)
            if payload is not None:
                payloads[k] = ensure_hashable(payload)
        return payloads

    def finish_round(
        self,
        payloads: Mapping[int, Hashable],
        raw_emissions: Mapping[int, Mapping[int, Sequence[Hashable]]] | None = None,
    ) -> RoundRecord:
        """Phases 2-4 of a round: emissions, delivery, trace record.

        Args:
            payloads: The :meth:`compose_round` result for this round.
            raw_emissions: Byzantine emissions to deliver instead of
                consulting the attached adversary.  They pass through
                the same :func:`~repro.sim.adversary.normalize_emissions`
                model-rule enforcement either way.

        Returns:
            The appended :class:`~repro.sim.trace.RoundRecord`.
        """
        self._own_processes()
        r = self.round_no

        # Phase 2: the (rushing) adversary emits Byzantine messages.
        if raw_emissions is None:
            emissions = self._collect_emissions(payloads)
        else:
            emissions = normalize_emissions(
                self.params, self.byzantine, raw_emissions, r
            )

        # Phase 3: deliver per-recipient inboxes to correct processes.
        decided_before = {
            k: self.processes[k].decided for k in self._correct
        }
        deliveries = self._deliver_round(r, payloads, emissions)

        # Phase 4: record the round.
        decisions = {
            k: self.processes[k].decision
            for k in self._correct
            if self.processes[k].decided and not decided_before[k]
        }
        record = RoundRecord(
            round_no=r,
            payloads=dict(payloads),
            emissions=emissions,
            decisions=decisions,
        )
        self.trace.append(record)
        self.deliveries.append(deliveries)
        self.round_no += 1
        return record

    def step(self) -> RoundRecord:
        """Execute one full round (compose, emit, deliver, record).

        Returns:
            The round's appended :class:`~repro.sim.trace.RoundRecord`.
        """
        return self.finish_round(self.compose_round())

    def run(self, max_rounds: int, stop_when_all_decided: bool = True) -> int:
        """Step the kernel until decision or the round budget runs out.

        Args:
            max_rounds: Upper bound on rounds to execute.
            stop_when_all_decided: Stop early once every correct
                process has decided (disable to observe post-decision
                rounds).

        Returns:
            The number of rounds actually executed.
        """
        executed = 0
        for _ in range(max_rounds):
            self.step()
            executed += 1
            if stop_when_all_decided and self.all_correct_decided():
                break
        return executed

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> EngineCheckpoint:
        """Snapshot the mutable kernel state for later :meth:`restore`.

        Copy-on-write: the snapshot aliases the live process objects and
        the kernel deep-copies them only when the next round actually
        mutates process state, so checkpoints taken at leaves (or
        followed by :meth:`restore` before any step) never pay the copy.
        Trace records, delivery records and loss triples are immutable,
        so sharing their tuples is always safe.  The attached adversary
        is *not* captured -- callers that branch executions (the
        strategy explorer) either use stateless scripted adversaries or
        checkpoint their adversary state themselves.

        Returns:
            An immutable, reusable :class:`EngineCheckpoint`.
        """
        self._processes_shared = True
        return EngineCheckpoint(
            round_no=self.round_no,
            processes=tuple(self.processes),
            trace_records=self.trace.snapshot(),
            deliveries=tuple(self.deliveries),
            losses=tuple(self.losses),
        )

    def restore(self, checkpoint: EngineCheckpoint) -> None:
        """Rewind the kernel to a :meth:`checkpoint` snapshot.

        The checkpoint itself is left untouched: the kernel adopts its
        process tuple by reference and deep-copies only when the next
        round mutates process state (copy-on-write), so the same
        snapshot can seed any number of divergent continuations -- the
        primitive the bounded strategy explorer's depth-first search is
        built on -- at one copy per branch instead of two.

        Args:
            checkpoint: A snapshot taken from *this* kernel (snapshots
                carry no configuration, so restoring one from a
                differently-configured kernel is undefined).
        """
        self.round_no = checkpoint.round_no
        self.processes = list(checkpoint.processes)
        self._processes_shared = True
        self.trace.restore(checkpoint.trace_records)
        self.deliveries = list(checkpoint.deliveries)
        self.losses = list(checkpoint.losses)

    def _own_processes(self) -> None:
        """Deep-copy the process list if a checkpoint still aliases it.

        The copy-on-write half of :meth:`checkpoint`/:meth:`restore`:
        called before any round phase that mutates process state, it
        ensures snapshots stay frozen while a checkpoint/restore
        round-trip costs one deep copy instead of two.
        """
        if self._processes_shared:
            self.processes = list(copy.deepcopy(self.processes))
            self._processes_shared = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _collect_emissions(
        self, payloads: Mapping[int, Hashable]
    ) -> dict[int, dict[int, tuple[Hashable, ...]]]:
        view = AdversaryView(
            round_no=self.round_no,
            params=self.params,
            assignment=self.assignment,
            byzantine=self.byzantine,
            correct_payloads=dict(payloads),
            processes=self.processes,
            trace=self.trace,
        )
        raw = self.adversary.emissions(view)
        return normalize_emissions(self.params, self.byzantine, raw, self.round_no)

    def _deliver_round(
        self,
        round_no: int,
        payloads: Mapping[int, Hashable],
        emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
    ) -> RoundDeliveries:
        """Deliver one round through the message fabric.

        Delegates to :func:`repro.sim.fabric.deliver_round`, which picks
        the numpy array path or the pure-Python scalar fallback (both
        byte-identical; see the fabric module docs).
        """
        return fabric.deliver_round(self, round_no, payloads, emissions)


# ----------------------------------------------------------------------
# Batch scheduling
# ----------------------------------------------------------------------
def run_batch(
    jobs: Sequence[tuple[ExecutionKernel, int]],
    stop_when_all_decided: bool = True,
) -> list[int]:
    """Drive many independent kernels round-robin until each finishes.

    The soak farm's scheduling hook: rather than running each agreement
    instance to completion in turn, every live kernel advances one round
    per sweep.  Kernels never share state, so each one executes exactly
    the rounds :meth:`ExecutionKernel.run` would have -- batch results
    are bit-identical to solo runs, which is what makes every soak
    instance replayable in isolation -- while the interleaving keeps a
    heterogeneous batch's wavefront moving instead of serialising behind
    its slowest member, and exercises the engine the way sustained
    mixed traffic does.

    Args:
        jobs: ``(kernel, max_rounds)`` pairs; each kernel steps until
            its own round budget runs out (or it decides).
        stop_when_all_decided: Per kernel, stop early once every
            correct process has decided (same contract as
            :meth:`ExecutionKernel.run`).

    Returns:
        Rounds executed per job, aligned with ``jobs``.
    """
    executed = [0] * len(jobs)
    live = [index for index, (_, budget) in enumerate(jobs) if budget > 0]
    while live:
        survivors = []
        for index in live:
            kernel, budget = jobs[index]
            kernel.step()
            executed[index] += 1
            if executed[index] >= budget:
                continue
            if stop_when_all_decided and kernel.all_correct_decided():
                continue
            survivors.append(index)
        live = survivors
    return executed
