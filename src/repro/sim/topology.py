"""Delivery topology: which correct-process links exist.

The paper's model is fully connected, and every algorithm in this
package assumes it.  Topologies exist for one purpose: the Figure 1
scenario argument (Proposition 1) builds a *larger* reference system in
which processes are wired so that three overlapping arcs each look like
a legitimate fully-connected n-process system.  The
:class:`DirectedTopology` implements that wiring.

Self-delivery is handled by the engine (a process always receives its
own broadcast) and is not subject to topology filtering; topologies
only govern links between distinct processes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.sim import fabric


class Topology(ABC):
    """Predicate deciding whether a link ``sender -> recipient`` exists."""

    @abstractmethod
    def delivers(self, sender: int, recipient: int) -> bool:
        """True when messages from ``sender`` reach ``recipient``."""

    def blocked_senders(
        self, recipient: int, senders: Sequence[int]
    ) -> tuple[int, ...]:
        """The subset of ``senders`` whose link to ``recipient`` is cut.

        This is the message fabric's per-receiver delta query: the
        engine materialises the round's common delivery multiset once
        and only subtracts what a topology actually removes.  The
        recipient itself is never reported (self-delivery is not subject
        to topology filtering).  Subclasses with structural knowledge
        override this with something cheaper than the per-link loop.

        Args:
            recipient: The receiving process index.
            senders: Candidate sender indices (ascending).

        Returns:
            The blocked senders, in ``senders`` order.
        """
        return tuple(
            s for s in senders
            if s != recipient and not self.delivers(s, recipient)
        )

    def blocked_mask(self, receivers: Sequence[int], senders: Sequence[int]):
        """All cut links as one ``(receivers, senders)`` bool mask.

        The array fabric's batch form of :meth:`blocked_senders`:
        ``mask[i, j]`` is True when the link ``senders[j] ->
        receivers[i]`` is cut.  The default bridges to the scalar query
        row by row; subclasses with structural knowledge override it
        with real array ops.  Self-links are never reported.

        Args:
            receivers: The receiving process indices (ascending).
            senders: Candidate sender indices (ascending).

        Returns:
            A fresh, writable numpy bool array.
        """
        return fabric.mask_from_rows(
            lambda q: self.blocked_senders(q, senders), receivers, senders
        )


class CompleteTopology(Topology):
    """The paper's default: every process reaches every other."""

    def delivers(self, sender: int, recipient: int) -> bool:
        return True

    def blocked_senders(
        self, recipient: int, senders: Sequence[int]
    ) -> tuple[int, ...]:
        return ()

    def blocked_mask(self, receivers: Sequence[int], senders: Sequence[int]):
        return fabric.new_mask(len(receivers), len(senders))

    def __repr__(self) -> str:
        return "CompleteTopology()"


class DirectedTopology(Topology):
    """Explicit in-neighbour sets per recipient.

    ``in_neighbors[r]`` is the set of sender indices whose messages
    reach process ``r``.  Senders absent from the mapping reach nobody;
    recipients absent from the mapping receive from everybody (complete
    default), which keeps scenario constructions concise.
    """

    def __init__(self, in_neighbors: Mapping[int, frozenset[int] | set[int]]) -> None:
        self._in: dict[int, frozenset[int]] = {
            int(r): frozenset(senders) for r, senders in in_neighbors.items()
        }
        for r, senders in self._in.items():
            if r < 0 or any(s < 0 for s in senders):
                raise ConfigurationError("process indices must be non-negative")

    def delivers(self, sender: int, recipient: int) -> bool:
        senders = self._in.get(recipient)
        if senders is None:
            return True
        return sender in senders

    def blocked_senders(
        self, recipient: int, senders: Sequence[int]
    ) -> tuple[int, ...]:
        allowed = self._in.get(recipient)
        if allowed is None:
            return ()
        return tuple(
            s for s in senders if s != recipient and s not in allowed
        )

    def blocked_mask(self, receivers: Sequence[int], senders: Sequence[int]):
        np = fabric.require_numpy()
        mask = fabric.new_mask(len(receivers), len(senders))
        send = np.asarray(senders, dtype=np.int64)
        for i, q in enumerate(receivers):
            allowed = self._in.get(q)
            if allowed is None:
                continue
            row = ~np.isin(
                send, np.asarray(sorted(allowed), dtype=np.int64)
            )
            if q in senders:
                row[senders.index(q)] = False  # self-link never blocked
            mask[i] = row
        return mask

    def in_neighbors(self, recipient: int) -> frozenset[int] | None:
        """The configured in-set, or ``None`` when the recipient is open."""
        return self._in.get(recipient)

    def __repr__(self) -> str:
        return f"DirectedTopology({len(self._in)} constrained recipients)"
