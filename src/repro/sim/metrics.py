"""Message and round accounting.

The paper is a computability paper -- it proves no complexity bounds --
but the benchmark harness reports message/round costs so that the
relative costs of the algorithms (e.g. the 3x round overhead of the
Figure 3 transformation, or the echo amplification of authenticated
broadcast) are visible in the regenerated tables.

Two accounting paths exist:

* **exact** -- the network engine's message fabric counts every edge it
  actually delivers (after topology cuts and drop schedules) and logs a
  :class:`RoundDeliveries` record per round;
  :func:`metrics_from_deliveries` folds the log into :class:`Metrics`.
  This is what :func:`repro.sim.runner.run_execution` reports.
* **estimated** (deprecated) -- :func:`metrics_from_trace` multiplies
  each broadcast by a uniform ``fanout``.  That is exact only on the
  complete topology with no drops; under a restricting
  :class:`~repro.sim.topology.Topology` it *overcounts*, which is why
  it now refuses restricted topologies outright and warns on every
  call.

"Bytes" are approximated by the length of ``repr(payload)``, which is
stable, cheap, and good enough to compare algorithms against each other
within this package.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.errors import ConfigurationError
from repro.sim.trace import Trace


@dataclass
class Metrics:
    """Aggregated execution costs."""

    rounds: int = 0
    correct_broadcasts: int = 0
    correct_messages: int = 0  # broadcasts fanned out to recipients
    byzantine_messages: int = 0
    payload_bytes: int = 0

    def merge(self, other: "Metrics") -> "Metrics":
        return Metrics(
            rounds=self.rounds + other.rounds,
            correct_broadcasts=self.correct_broadcasts + other.correct_broadcasts,
            correct_messages=self.correct_messages + other.correct_messages,
            byzantine_messages=self.byzantine_messages + other.byzantine_messages,
            payload_bytes=self.payload_bytes + other.payload_bytes,
        )

    @property
    def total_messages(self) -> int:
        return self.correct_messages + self.byzantine_messages

    def summary(self) -> str:
        return (
            f"{self.rounds} rounds, "
            f"{self.correct_broadcasts} broadcasts "
            f"({self.correct_messages} correct msgs, "
            f"{self.byzantine_messages} byzantine msgs), "
            f"~{self.payload_bytes} payload bytes"
        )


@dataclass(frozen=True)
class RoundDeliveries:
    """Exact per-round delivery counts, as observed by the message fabric.

    One record per executed round.  "Deliveries" are edges that actually
    carried a message into a correct process's inbox: self-delivery
    counts, topology-cut and schedule-dropped edges do not, and
    adversary messages addressed to Byzantine slots (which have no
    process to receive them) do not.  Counts are physical -- innumerate
    set-collapse happens *after* delivery and does not reduce them.

    Attributes
    ----------
    round_no:
        The 0-indexed round.
    correct_broadcasts:
        Correct processes that composed a payload this round.
    correct_deliveries:
        Correct-sender edges delivered (including self-delivery).
    byzantine_deliveries:
        Adversary messages delivered to correct processes.
    correct_payload_bytes:
        Approximate bytes over the delivered correct edges.
    byzantine_payload_bytes:
        Approximate bytes over the delivered adversary messages.
    """

    round_no: int
    correct_broadcasts: int
    correct_deliveries: int
    byzantine_deliveries: int
    correct_payload_bytes: int
    byzantine_payload_bytes: int


def payload_size(payload: Hashable) -> int:
    """Approximate wire size of a payload (repr length)."""
    return len(repr(payload))


def metrics_from_deliveries(deliveries: Iterable[RoundDeliveries]) -> Metrics:
    """Fold an engine's per-round delivery log into :class:`Metrics`.

    This is the exact accounting path: every count comes from an edge
    the fabric actually delivered, so the totals are correct under any
    topology and drop schedule.

    Args:
        deliveries: Per-round records, e.g.
            :attr:`repro.sim.network.RoundEngine.deliveries`.

    Returns:
        The aggregated metrics.
    """
    m = Metrics()
    for d in deliveries:
        m.rounds += 1
        m.correct_broadcasts += d.correct_broadcasts
        m.correct_messages += d.correct_deliveries
        m.byzantine_messages += d.byzantine_deliveries
        m.payload_bytes += d.correct_payload_bytes + d.byzantine_payload_bytes
    return m


@dataclass
class WindowAggregator:
    """Streaming fold of per-instance verdict/cost records.

    The soak farm never holds its instance stream in memory: each
    finished agreement instance is folded into these cumulative
    counters, and every window boundary snapshots them into the
    checkpoint row of the streaming log.  All fields are deterministic
    functions of the instance stream (no wall-clock), which is what
    keeps checkpoint rows byte-identical across kill/resume.
    """

    instances: int = 0
    ok: int = 0
    violations: int = 0
    rounds: int = 0
    messages: int = 0
    losses: int = 0

    def add(
        self, ok: bool, rounds: int, messages: int, losses: int = 0
    ) -> None:
        """Fold one finished instance into the counters.

        Args:
            ok: The instance's agreement verdict.
            rounds: Rounds the instance executed (its latency in the
                round-model clock).
            messages: Delivered-edge count (exact fabric accounting).
            losses: Basic-model loss edges under a loss-logging timing
                model.
        """
        self.instances += 1
        if ok:
            self.ok += 1
        else:
            self.violations += 1
        self.rounds += int(rounds)
        self.messages += int(messages)
        self.losses += int(losses)

    def add_record(self, record: "dict | object") -> None:
        """Fold a run-record-shaped mapping or object.

        Accepts anything carrying ``ok``/``rounds``/``messages``/
        ``losses`` as keys or attributes -- a
        :class:`~repro.experiments.harness.RunRecord`, its ``asdict``
        form, or a soak log instance row.
        """
        get = record.get if isinstance(record, dict) else (
            lambda name, default=0: getattr(record, name, default)
        )
        self.add(
            ok=bool(get("ok", False)),
            rounds=get("rounds", 0),
            messages=get("messages", 0),
            losses=get("losses", 0),
        )

    def snapshot(self) -> dict:
        """The cumulative counters as a JSON-compatible dict."""
        return {
            "instances": self.instances,
            "ok": self.ok,
            "violations": self.violations,
            "rounds": self.rounds,
            "messages": self.messages,
            "losses": self.losses,
        }


def metrics_from_trace(
    trace: Trace, fanout: int, topology=None, drop_schedule=None
) -> Metrics:
    """Estimate metrics from a finished trace.  **Deprecated.**

    ``fanout`` is the number of recipients of each correct broadcast
    (``n`` under the complete topology with self-delivery).  The
    estimate is exact only there: restricted topologies and drop
    schedules deliver fewer edges than ``broadcasts * fanout``.  Use
    :func:`metrics_from_deliveries` with the engine's delivery log for
    exact costs; this shim remains for trace-only consumers and will be
    removed once none are left.

    Args:
        trace: The finished execution trace.
        fanout: Recipients per correct broadcast.
        topology: The topology the execution ran under, when known.
            Anything other than ``None`` or a complete topology raises,
            because the uniform-fanout estimate would silently
            overcount.
        drop_schedule: The drop schedule the execution ran under, when
            known.  A schedule that can lose messages (any schedule
            whose stabilisation round is positive) raises for the same
            reason.

    Returns:
        The estimated metrics.

    Raises:
        ConfigurationError: When ``topology`` or ``drop_schedule``
            restricts delivery.
    """
    warnings.warn(
        "metrics_from_trace estimates costs from a uniform fanout; "
        "use metrics_from_deliveries(engine.deliveries) for exact "
        "accounting",
        DeprecationWarning,
        stacklevel=2,
    )
    if topology is not None:
        from repro.sim.topology import CompleteTopology

        if not isinstance(topology, CompleteTopology):
            raise ConfigurationError(
                f"metrics_from_trace assumes full fanout but the execution "
                f"ran under {topology!r}; use metrics_from_deliveries for "
                f"exact accounting under restricted topologies"
            )
    if drop_schedule is not None and drop_schedule.gst > 0:
        raise ConfigurationError(
            f"metrics_from_trace assumes full fanout but the execution "
            f"ran under a drop schedule stabilising at round "
            f"{drop_schedule.gst}; use metrics_from_deliveries for exact "
            f"accounting under message loss"
        )
    m = Metrics(rounds=len(trace))
    for record in trace:
        m.correct_broadcasts += len(record.payloads)
        m.correct_messages += len(record.payloads) * fanout
        m.byzantine_messages += record.byzantine_message_count
        m.payload_bytes += sum(
            payload_size(p) * fanout for p in record.payloads.values()
        )
        m.payload_bytes += sum(
            payload_size(p)
            for per_recipient in record.emissions.values()
            for payloads in per_recipient.values()
            for p in payloads
        )
    return m
