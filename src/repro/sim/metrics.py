"""Message and round accounting.

The paper is a computability paper -- it proves no complexity bounds --
but the benchmark harness reports message/round costs so that the
relative costs of the algorithms (e.g. the 3x round overhead of the
Figure 3 transformation, or the echo amplification of authenticated
broadcast) are visible in the regenerated tables.

Costs are derived from the trace.  "Bytes" are approximated by the
length of ``repr(payload)``, which is stable, cheap, and good enough to
compare algorithms against each other within this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.sim.trace import Trace


@dataclass
class Metrics:
    """Aggregated execution costs."""

    rounds: int = 0
    correct_broadcasts: int = 0
    correct_messages: int = 0  # broadcasts fanned out to recipients
    byzantine_messages: int = 0
    payload_bytes: int = 0

    def merge(self, other: "Metrics") -> "Metrics":
        return Metrics(
            rounds=self.rounds + other.rounds,
            correct_broadcasts=self.correct_broadcasts + other.correct_broadcasts,
            correct_messages=self.correct_messages + other.correct_messages,
            byzantine_messages=self.byzantine_messages + other.byzantine_messages,
            payload_bytes=self.payload_bytes + other.payload_bytes,
        )

    @property
    def total_messages(self) -> int:
        return self.correct_messages + self.byzantine_messages

    def summary(self) -> str:
        return (
            f"{self.rounds} rounds, "
            f"{self.correct_broadcasts} broadcasts "
            f"({self.correct_messages} correct msgs, "
            f"{self.byzantine_messages} byzantine msgs), "
            f"~{self.payload_bytes} payload bytes"
        )


def payload_size(payload: Hashable) -> int:
    """Approximate wire size of a payload (repr length)."""
    return len(repr(payload))


def metrics_from_trace(trace: Trace, fanout: int) -> Metrics:
    """Compute metrics from a finished trace.

    ``fanout`` is the number of recipients of each correct broadcast
    (``n`` under the complete topology with self-delivery).
    """
    m = Metrics(rounds=len(trace))
    for record in trace:
        m.correct_broadcasts += len(record.payloads)
        m.correct_messages += len(record.payloads) * fanout
        m.byzantine_messages += record.byzantine_message_count
        m.payload_bytes += sum(
            payload_size(p) * fanout for p in record.payloads.values()
        )
        m.payload_bytes += sum(
            payload_size(p)
            for per_recipient in record.emissions.values()
            for payloads in per_recipient.values()
            for p in payloads
        )
    return m
