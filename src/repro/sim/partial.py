"""Partial synchrony: message-drop schedules (DLS basic model).

The paper adopts the *basic* partially synchronous model of Dwork,
Lynch and Stockmeyer: computation proceeds in rounds exactly as in the
synchronous model, except that in each execution a finite number of
messages between correct processes may fail to be delivered.
Equivalently, there is a round -- here called ``gst`` ("global
stabilisation time", borrowing the standard term) -- from which every
message is delivered.  Algorithms never learn ``gst``.

A :class:`DropSchedule` decides, per ``(round, sender, recipient)``
link, whether that message is lost.  Schedules guarantee finiteness
structurally: all of them stop dropping at their ``gst`` attribute and
the engine enforces this (a schedule that tried to drop later would be
a model violation).

Self-delivery is never dropped: a process's message to itself does not
traverse the network.

Byzantine messages are not subject to schedules -- the adversary simply
chooses what to send to whom, which subsumes dropping.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Collection, Sequence

from repro.core.canonical import stable_seed
from repro.core.errors import ConfigurationError
from repro.sim import fabric


class DropSchedule(ABC):
    """Decides which correct-to-correct messages are lost before ``gst``."""

    def __init__(self, gst: int) -> None:
        if gst < 0:
            raise ConfigurationError(f"gst must be >= 0, got {gst}")
        self._gst = int(gst)

    @property
    def gst(self) -> int:
        """First round from which every message is delivered."""
        return self._gst

    def drops(self, round_no: int, sender: int, recipient: int) -> bool:
        """True when the message on this link is lost this round."""
        if round_no >= self._gst or sender == recipient:
            return False
        return self._drops_before_gst(round_no, sender, recipient)

    def active(self, round_no: int) -> bool:
        """True when this schedule may still lose messages in ``round_no``.

        The message fabric uses this to skip per-link drop queries
        entirely from the stabilisation round on -- the common case of
        every synchronous execution (``gst == 0``) and of every
        partially synchronous round after GST.
        """
        return round_no < self._gst

    def dropped_senders(
        self, round_no: int, recipient: int, senders: Collection[int]
    ) -> tuple[int, ...]:
        """The subset of ``senders`` whose message to ``recipient`` is lost.

        Per-receiver delta query of the message fabric, mirroring
        :meth:`Topology.blocked_senders
        <repro.sim.topology.Topology.blocked_senders>`.  Self-delivery
        is never dropped, so the recipient is never reported.

        Args:
            round_no: The current round.
            recipient: The receiving process index.
            senders: Candidate sender indices (ascending).

        Returns:
            The dropped senders, in ``senders`` order.
        """
        if round_no >= self._gst:
            return ()
        return tuple(
            s for s in senders
            if s != recipient and self._drops_before_gst(round_no, s, recipient)
        )

    def dropped_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        """The round's losses as one ``(receivers, senders)`` bool mask.

        The array fabric's batch form of :meth:`dropped_senders`:
        ``mask[i, j]`` is True when ``senders[j]``'s message to
        ``receivers[i]`` is lost this round.  The default bridges to
        the scalar query row by row, so predicate- or RNG-backed
        schedules (whose per-link decisions cannot be vectorized
        byte-identically) participate unchanged; structural schedules
        override it with real array ops.  Self-links are never
        reported, and rounds at or past ``gst`` yield the empty mask.

        Args:
            round_no: The current round.
            receivers: The receiving process indices (ascending).
            senders: Candidate sender indices (ascending).

        Returns:
            A fresh, writable numpy bool array.
        """
        if round_no >= self._gst:
            return fabric.new_mask(len(receivers), len(senders))
        return fabric.mask_from_rows(
            lambda q: self.dropped_senders(round_no, q, senders),
            receivers,
            senders,
        )

    @abstractmethod
    def _drops_before_gst(self, round_no: int, sender: int, recipient: int) -> bool:
        """Drop decision for rounds strictly before ``gst``."""


class NoDrops(DropSchedule):
    """The synchronous special case: nothing is ever dropped."""

    def __init__(self) -> None:
        super().__init__(gst=0)

    def _drops_before_gst(self, round_no: int, sender: int, recipient: int) -> bool:
        return False  # pragma: no cover - unreachable (gst == 0)

    def dropped_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        return fabric.new_mask(len(receivers), len(senders))


class SilenceUntil(DropSchedule):
    """Every inter-process message is lost before ``gst``.

    The harshest schedule the model permits; termination proofs are
    exercised hardest here because nothing useful happens before
    stabilisation.
    """

    def _drops_before_gst(self, round_no: int, sender: int, recipient: int) -> bool:
        return True

    def dropped_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        np = fabric.require_numpy()
        if round_no >= self._gst:
            return fabric.new_mask(len(receivers), len(senders))
        recv = np.asarray(receivers, dtype=np.int64)
        send = np.asarray(senders, dtype=np.int64)
        # Everything but self-delivery is lost before gst.
        return recv[:, None] != send[None, :]


class PartitionSchedule(DropSchedule):
    """Two blocks of correct processes cannot hear each other before ``gst``.

    Messages inside a block are delivered; messages crossing between
    ``block_a`` and ``block_b`` are lost.  Processes in neither block
    communicate normally.  This is the schedule of the Figure 4 lower
    bound construction.
    """

    def __init__(self, gst: int, block_a: Collection[int], block_b: Collection[int]) -> None:
        super().__init__(gst)
        self.block_a = frozenset(block_a)
        self.block_b = frozenset(block_b)
        if self.block_a & self.block_b:
            raise ConfigurationError(
                f"partition blocks overlap: {sorted(self.block_a & self.block_b)}"
            )

    def _drops_before_gst(self, round_no: int, sender: int, recipient: int) -> bool:
        return (sender in self.block_a and recipient in self.block_b) or (
            sender in self.block_b and recipient in self.block_a
        )

    def dropped_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        np = fabric.require_numpy()
        if round_no >= self._gst:
            return fabric.new_mask(len(receivers), len(senders))
        recv = np.asarray(receivers, dtype=np.int64)
        send = np.asarray(senders, dtype=np.int64)
        block_a = np.asarray(sorted(self.block_a), dtype=np.int64)
        block_b = np.asarray(sorted(self.block_b), dtype=np.int64)
        recv_a = np.isin(recv, block_a)
        recv_b = np.isin(recv, block_b)
        send_a = np.isin(send, block_a)
        send_b = np.isin(send, block_b)
        # Cross-block links lose; the blocks are disjoint, so a
        # self-link never crosses and the diagonal stays False.
        return (recv_a[:, None] & send_b[None, :]) | (
            recv_b[:, None] & send_a[None, :]
        )


class RandomDrops(DropSchedule):
    """Each link-message before ``gst`` is lost independently with probability ``p``.

    Deterministic given the seed; used by the fuzzing layers of the test
    suite and benches.
    """

    def __init__(self, gst: int, p: float, seed: int = 0) -> None:
        super().__init__(gst)
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"drop probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)

    def _drops_before_gst(self, round_no: int, sender: int, recipient: int) -> bool:
        # Digest-seeded rather than a shared Random instance so the
        # decision for a link is independent of evaluation order, and
        # stable_seed (not the salted builtin hash) so it is identical
        # across interpreter runs.
        rng = random.Random(stable_seed((self.seed, round_no, sender, recipient)))
        return rng.random() < self.p


class ExplicitDrops(DropSchedule):
    """An explicit finite set of ``(round, sender, recipient)`` losses.

    The most surgical schedule; the replay-based lower-bound
    constructions compute exact drop sets and feed them here.
    """

    def __init__(self, drops: Collection[tuple[int, int, int]]) -> None:
        drop_set = frozenset(
            (int(r), int(s), int(q)) for r, s, q in drops
        )
        gst = max((r for r, _, _ in drop_set), default=-1) + 1
        super().__init__(gst)
        self._drop_set = drop_set

    def _drops_before_gst(self, round_no: int, sender: int, recipient: int) -> bool:
        return (round_no, sender, recipient) in self._drop_set

    def dropped_mask(
        self, round_no: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        mask = fabric.new_mask(len(receivers), len(senders))
        if round_no >= self._gst:
            return mask
        row_of = {q: i for i, q in enumerate(receivers)}
        col_of = {s: j for j, s in enumerate(senders)}
        for r, s, q in sorted(self._drop_set):
            if r != round_no or s == q:
                continue
            i = row_of.get(q)
            j = col_of.get(s)
            if i is not None and j is not None:
                mask[i, j] = True
        return mask


class PredicateDrops(DropSchedule):
    """Adapter: an arbitrary predicate limited to rounds before ``gst``."""

    def __init__(self, gst: int, predicate: Callable[[int, int, int], bool]) -> None:
        super().__init__(gst)
        self._predicate = predicate

    def _drops_before_gst(self, round_no: int, sender: int, recipient: int) -> bool:
        return bool(self._predicate(round_no, sender, recipient))
