"""Execution traces.

The trace records, per round, what every correct process broadcast,
what every Byzantine slot emitted, and which decisions were made.  It
serves three consumers:

* debugging / pretty-printing of executions;
* the **replay adversaries** that realise the paper's lower-bound
  constructions (Figures 1 and 4 re-send messages recorded in
  reference executions);
* the metrics layer, which derives message counts from it.

Traces record *payloads*, not delivered inboxes: because correct
processes broadcast, per-recipient inboxes are reconstructible from the
payloads plus the topology and drop schedule, and not storing them
keeps long executions small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

from repro.core.errors import ReplayError


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one round.

    Attributes
    ----------
    round_no:
        The 0-indexed round number.
    payloads:
        ``correct process index -> payload`` broadcast this round
        (silent processes absent).
    emissions:
        ``byzantine index -> recipient index -> tuple of payloads``.
    decisions:
        ``process index -> value`` for first decisions made this round.
    """

    round_no: int
    payloads: Mapping[int, Hashable]
    emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]]
    decisions: Mapping[int, Hashable]

    @property
    def correct_message_count(self) -> int:
        return len(self.payloads)

    @property
    def byzantine_message_count(self) -> int:
        return sum(
            len(payloads)
            for per_recipient in self.emissions.values()
            for payloads in per_recipient.values()
        )


class Trace:
    """Append-only sequence of :class:`RoundRecord`."""

    def __init__(self) -> None:
        self._records: list[RoundRecord] = []

    # ------------------------------------------------------------------
    # Recording (engine-facing)
    # ------------------------------------------------------------------
    def append(self, record: RoundRecord) -> None:
        if record.round_no != len(self._records):
            raise ReplayError(
                f"trace expected round {len(self._records)}, got {record.round_no}"
            )
        self._records.append(record)

    def snapshot(self) -> tuple[RoundRecord, ...]:
        """The records so far, as an immutable tuple.

        Records are frozen dataclasses, so the tuple is a complete
        snapshot: engine checkpointing stores it and :meth:`restore`
        rewinds to it without copying record contents.
        """
        return tuple(self._records)

    def restore(self, records: tuple[RoundRecord, ...]) -> None:
        """Replace the trace contents with a :meth:`snapshot` result.

        Args:
            records: A contiguous round-0-based record tuple (anything
                else would violate the append invariant).

        Raises:
            ReplayError: If the records are not contiguous from round 0.
        """
        if any(r.round_no != i for i, r in enumerate(records)):
            raise ReplayError("snapshot records are not contiguous from round 0")
        self._records = list(records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._records)

    def record(self, round_no: int) -> RoundRecord:
        """The record of a specific round (raises if not yet executed)."""
        try:
            return self._records[round_no]
        except IndexError:
            raise ReplayError(
                f"round {round_no} not in trace (has {len(self._records)} rounds)"
            ) from None

    def payload_of(self, round_no: int, sender: int) -> Hashable:
        """Payload broadcast by correct process ``sender`` in ``round_no``.

        Returns ``None`` when the process was silent that round.
        """
        return self.record(round_no).payloads.get(sender)

    def decisions(self) -> dict[int, Hashable]:
        """All first decisions across the execution."""
        result: dict[int, Hashable] = {}
        for record in self._records:
            for index, value in record.decisions.items():
                result.setdefault(index, value)
        return result

    def decision_rounds(self) -> dict[int, int]:
        """Round of first decision per process."""
        result: dict[int, int] = {}
        for record in self._records:
            for index in record.decisions:
                result.setdefault(index, record.round_no)
        return result

    def summary(self, max_rounds: int = 20) -> str:
        """Compact human-readable digest of the execution."""
        lines = [f"Trace: {len(self._records)} rounds"]
        for record in self._records[:max_rounds]:
            parts = [f"r{record.round_no}:"]
            parts.append(f"{record.correct_message_count} correct sends")
            byz = record.byzantine_message_count
            if byz:
                parts.append(f"{byz} byzantine msgs")
            if record.decisions:
                decided = ", ".join(
                    f"p{k}={v!r}" for k, v in sorted(record.decisions.items())
                )
                parts.append(f"decisions: {decided}")
            lines.append("  " + " ".join(parts))
        if len(self._records) > max_rounds:
            lines.append(f"  ... {len(self._records) - max_rounds} more rounds")
        return "\n".join(lines)
