"""Round-based simulator: engine, processes, adversaries, schedules."""

from repro.sim.adversary import (
    Adversary,
    AdversaryView,
    Emission,
    NullAdversary,
    normalize_emissions,
)
from repro.sim.delay import (
    AlwaysBoundedUnknownDelays,
    DelayPolicy,
    DelayRoundSimulator,
    DelaySimulationResult,
    EventuallyBoundedDelays,
    ReferenceDelaySimulator,
    equivalent_basic_gst,
    run_delay_execution,
)
from repro.sim.kernel import (
    BasicPsync,
    ComposedTiming,
    DelayBased,
    EngineCheckpoint,
    ExecutionKernel,
    LockStep,
    TimingModel,
    timing_model_for,
)
from repro.sim.metrics import (
    Metrics,
    RoundDeliveries,
    metrics_from_deliveries,
    metrics_from_trace,
    payload_size,
)
from repro.sim.network import ReferenceRoundEngine, RoundEngine
from repro.sim.partial import (
    DropSchedule,
    ExplicitDrops,
    NoDrops,
    PartitionSchedule,
    PredicateDrops,
    RandomDrops,
    SilenceUntil,
)
from repro.sim.process import EchoProcess, Process, SilentProcess
from repro.sim.runner import (
    ExecutionResult,
    ProcessFactory,
    RunSummary,
    make_processes,
    run_agreement,
    run_execution,
)
from repro.sim.topology import CompleteTopology, DirectedTopology, Topology
from repro.sim.trace import RoundRecord, Trace

__all__ = [
    "Adversary",
    "AdversaryView",
    "AlwaysBoundedUnknownDelays",
    "BasicPsync",
    "ComposedTiming",
    "DelayBased",
    "DelayPolicy",
    "DelayRoundSimulator",
    "DelaySimulationResult",
    "EventuallyBoundedDelays",
    "ExecutionKernel",
    "LockStep",
    "ReferenceDelaySimulator",
    "TimingModel",
    "equivalent_basic_gst",
    "run_delay_execution",
    "timing_model_for",
    "CompleteTopology",
    "DirectedTopology",
    "DropSchedule",
    "EchoProcess",
    "Emission",
    "ExecutionResult",
    "ExplicitDrops",
    "Metrics",
    "NoDrops",
    "NullAdversary",
    "PartitionSchedule",
    "PredicateDrops",
    "Process",
    "ProcessFactory",
    "RandomDrops",
    "EngineCheckpoint",
    "ReferenceRoundEngine",
    "RoundDeliveries",
    "RoundEngine",
    "RoundRecord",
    "RunSummary",
    "SilenceUntil",
    "SilentProcess",
    "Topology",
    "Trace",
    "make_processes",
    "metrics_from_deliveries",
    "metrics_from_trace",
    "normalize_emissions",
    "payload_size",
    "run_agreement",
    "run_execution",
]
