"""Window execution: a shard of the soak stream as one campaign unit.

The farm's unit of pool work is a *window* -- ``count`` consecutive
instances of the deterministic stream starting at ``start``.  A window
executes by building every instance's kernel and driving them all with
the kernel's batch scheduler (:func:`repro.sim.kernel.run_batch`):
round-robin interleaving in slices of ``batch`` kernels, so a window's
wavefront advances together instead of serialising behind its slowest
instance.  Kernels share no state, so each instance's verdict and costs
are bit-identical to a solo :func:`~repro.soak.mixture.run_instance`
replay -- the property the farm's replay contract rests on.

Windows ride the campaign engine (``kind="soak"`` units built by
:func:`repro.experiments.campaign.enumerate_soak_units`), which gives
the farm the existing process-pool fan-out, the content-hash disk cache
and prompt cancel-on-failure for free.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.experiments.harness import RunRecord
from repro.sim.kernel import ExecutionKernel, run_batch
from repro.sim.runner import make_processes, result_from_kernel
from repro.soak.mixture import (
    BuiltInstance,
    build_instance,
    get_profile,
    sample_instance,
)

#: Kernels driven concurrently per round-robin slice.  Bounds the live
#: process objects per worker while keeping the interleaving wide
#: enough to exercise mixed traffic.
DEFAULT_BATCH = 32


def make_kernel(built: BuiltInstance) -> ExecutionKernel:
    """Assemble the execution kernel for one built instance."""
    processes = make_processes(
        built.factory, built.assignment, built.proposals, built.byzantine
    )
    return ExecutionKernel(
        params=built.params,
        assignment=built.assignment,
        processes=processes,
        byzantine=built.byzantine,
        adversary=built.adversary,
        timing=built.timing,
    )


def run_soak_window(
    profile: str,
    farm_seed: int,
    start: int,
    count: int,
    batch: int = DEFAULT_BATCH,
) -> list[RunRecord]:
    """Execute one window of the soak stream on batched kernels.

    Args:
        profile: A :data:`~repro.soak.mixture.PROFILES` key.
        farm_seed: The farm's seed.
        start: Index of the window's first instance.
        count: Number of consecutive instances.
        batch: Kernels per round-robin slice.

    Returns:
        One :class:`~repro.experiments.harness.RunRecord` per instance,
        in stream order.

    Raises:
        ConfigurationError: Unknown profile or a non-positive window.
    """
    get_profile(profile)  # fail fast on unknown profiles
    if count < 1:
        raise ConfigurationError(f"soak window needs count >= 1, got {count}")
    if start < 0:
        raise ConfigurationError(f"soak window needs start >= 0, got {start}")
    records: list[RunRecord] = []
    for chunk_start in range(start, start + count, max(1, batch)):
        chunk = range(
            chunk_start, min(chunk_start + max(1, batch), start + count)
        )
        builds = [
            build_instance(sample_instance(profile, farm_seed, index))
            for index in chunk
        ]
        jobs = [(make_kernel(built), built.horizon) for built in builds]
        executed = run_batch(jobs)
        for built, (kernel, _), rounds in zip(builds, jobs, executed):
            brief = result_from_kernel(kernel, rounds).brief()
            records.append(
                RunRecord(
                    label=built.spec.describe(),
                    ok=brief.ok,
                    detail=brief.detail,
                    rounds=brief.rounds,
                    messages=brief.messages,
                    losses=brief.losses,
                )
            )
    return records
