"""The agreement soak farm: sustained adversarial traffic on the kernel.

Where the campaign engine sweeps a *lattice* (every parameter cell once,
exhaustively) and the atlas streams its evidence, the soak farm runs a
*mixture*: an endless deterministic stream of agreement instances drawn
from a weighted profile of system-parameter cells, adversary behaviours
(clones, mirrors, ghost faces, chaos, crashes) and timing policies, all
batched onto :class:`~repro.sim.kernel.ExecutionKernel` instances and
interleaved by :func:`~repro.sim.kernel.run_batch`.

The stream is a pure function of ``(profile, farm_seed, index)``:

* :func:`~repro.soak.mixture.sample_instance` gives instance ``i``'s
  full spec (cell, assignment, Byzantine set, inputs, adversary,
  timing) with a per-instance seed derived via ``stable_seed``, so any
  instance is replayable in isolation with
  :func:`~repro.soak.mixture.run_instance`;
* :func:`~repro.soak.units.run_soak_window` executes a window of the
  stream on batched kernels as one campaign unit;
* :func:`~repro.soak.driver.run_soak` drives windows through the
  campaign pool to an instance/duration budget, streaming metrics into
  a torn-line-safe JSONL log with checkpointed cumulative counters and
  byte-identical kill/resume.

CLI entry point: ``python -m repro soak`` (``--quick`` for the standard
10k-instance smoke budget).
"""

from repro.soak.driver import (
    SoakOutcome,
    checkpoint_id,
    expected_row_ids,
    run_soak,
    stream_rows,
    window_plan,
)
from repro.soak.mixture import (
    PROFILES,
    SOAK_SCHEMA,
    InstanceSpec,
    SoakCell,
    SoakProfile,
    build_instance,
    get_profile,
    run_instance,
    sample_instance,
)
from repro.soak.units import run_soak_window

__all__ = [
    "PROFILES",
    "SOAK_SCHEMA",
    "InstanceSpec",
    "SoakCell",
    "SoakOutcome",
    "SoakProfile",
    "build_instance",
    "checkpoint_id",
    "expected_row_ids",
    "get_profile",
    "run_instance",
    "run_soak",
    "run_soak_window",
    "sample_instance",
    "stream_rows",
    "window_plan",
]
