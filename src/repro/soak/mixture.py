"""Instance sampling for the agreement soak farm.

The soak farm runs an *unbounded* stream of agreement instances, each
drawn from a churned mixture of solvable cells, identity assignments,
input patterns, Byzantine strategies and timing models.  This module is
the deterministic sampler behind that stream:

* a :class:`SoakProfile` names the solvable cells in the mixture and
  their draw weights;
* :func:`sample_instance` maps ``(profile, farm seed, index)`` to a
  frozen :class:`InstanceSpec` via :func:`~repro.core.canonical.
  stable_seed`, so instance ``i`` of a farm is the same on every
  machine and every resume;
* :func:`build_instance` rebuilds the live objects (assignment,
  proposals, adversary, timing model) from a spec alone, which is what
  makes **any** soak instance replayable in isolation:
  ``run_instance(sample_instance(profile, seed, i))`` reproduces the
  exact execution the farm ran inside a batch.

The adversary mixture covers the repo's whole attack alphabet: the
simulated-correct family (crash / input-flip / equivocator / seeded
chaos), clone-fair re-routing, the mirror face, and the explorer's
ghost faces (:class:`~repro.adversaries.ghosts.GhostFaceAdversary`) in
both obedient-imposter and live-partition form.  Every sampled
configuration stays inside the model rules of its cell -- restricted
cells never draw the duplicator -- so a solvable cell must survive
every instance; any violation the soak surfaces is a real bug.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import asdict, dataclass
from typing import Hashable

from repro.adversaries.clones import CloneFairAdversary
from repro.adversaries.generic import (
    CrashAdversary,
    DuplicatorAdversary,
    EquivocatorAdversary,
    InputFlipAdversary,
    RandomByzantineAdversary,
)
from repro.adversaries.ghosts import GhostFaceAdversary
from repro.adversaries.mirror import MirrorAdversary
from repro.core.canonical import canonical_json, stable_seed
from repro.core.errors import ConfigurationError
from repro.core.identity import IdentityAssignment
from repro.core.params import Synchrony, SystemParams
from repro.core.problem import BINARY, AgreementProblem
from repro.experiments.harness import algorithm_for
from repro.experiments.workloads import (
    assignment_battery,
    input_patterns,
)
from repro.explore.alphabet import GhostPlan
from repro.sim.adversary import Adversary, NullAdversary
from repro.sim.delay import AlwaysBoundedUnknownDelays, EventuallyBoundedDelays
from repro.sim.kernel import DelayBased, TimingModel, timing_model_for
from repro.sim.partial import RandomDrops, SilenceUntil
from repro.sim.runner import run_agreement

#: Salt folded into every instance id and checkpoint id.  Bump when the
#: sampling procedure, the row shape, or the checkpoint contents change:
#: old soak logs must then resume-miss instead of silently mixing rows
#: produced by different sampling code.
SOAK_SCHEMA = "soak/1"

_SYNCHRONY = {s.short: s for s in Synchrony}


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoakCell:
    """One solvable cell of a soak mixture, with its draw weight."""

    label: str
    n: int
    ell: int
    t: int
    synchrony: str
    numerate: bool
    restricted: bool
    weight: int = 1

    def params(self) -> SystemParams:
        """The cell's :class:`SystemParams`."""
        return SystemParams(
            n=self.n, ell=self.ell, t=self.t,
            synchrony=_SYNCHRONY[self.synchrony],
            numerate=self.numerate, restricted=self.restricted,
        )


@dataclass(frozen=True)
class SoakProfile:
    """A named cell mixture the farm churns over."""

    name: str
    cells: tuple[SoakCell, ...]

    def cell(self, label: str) -> SoakCell:
        """Look a cell up by label.

        Raises:
            ConfigurationError: Unknown label.
        """
        for cell in self.cells:
            if cell.label == label:
                return cell
        raise ConfigurationError(
            f"profile {self.name!r} has no cell {label!r}"
        )


#: The quick mixture is dominated by the cheap cells (the synchronous
#: T(EIG) family and the small restricted-numerate Figure 7 cell) so a
#: ``--quick`` farm sustains tens of thousands of instances in minutes;
#: ``standard`` adds the n=7 Figure 5 DLS cell, whose per-instance cost
#: is ~50x the quick cells', at a low weight.
PROFILES: dict[str, SoakProfile] = {
    "quick": SoakProfile(
        name="quick",
        cells=(
            SoakCell("sync-eig-n4", n=4, ell=4, t=1,
                     synchrony="sync", numerate=False, restricted=False,
                     weight=4),
            SoakCell("sync-eig-n5", n=5, ell=4, t=1,
                     synchrony="sync", numerate=False, restricted=False,
                     weight=3),
            SoakCell("fig7-restricted-n4", n=4, ell=2, t=1,
                     synchrony="psync", numerate=True, restricted=True,
                     weight=3),
        ),
    ),
    "standard": SoakProfile(
        name="standard",
        cells=(
            SoakCell("sync-eig-n4", n=4, ell=4, t=1,
                     synchrony="sync", numerate=False, restricted=False,
                     weight=4),
            SoakCell("sync-eig-n5", n=5, ell=4, t=1,
                     synchrony="sync", numerate=False, restricted=False,
                     weight=3),
            SoakCell("fig7-restricted-n4", n=4, ell=2, t=1,
                     synchrony="psync", numerate=True, restricted=True,
                     weight=3),
            SoakCell("fig5-dls-n7", n=7, ell=6, t=1,
                     synchrony="psync", numerate=False, restricted=False,
                     weight=1),
        ),
    ),
}


def get_profile(name: str) -> SoakProfile:
    """Resolve a profile by name.

    Raises:
        ConfigurationError: Unknown profile.
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown soak profile {name!r}; "
            f"known: {sorted(PROFILES)}"
        ) from None


#: Adversary kinds drawn by the sampler.  Restricted cells exclude the
#: duplicator (multiple messages per recipient per round are illegal
#: there -- the engine would raise AdversaryViolation by design).
ADVERSARY_KINDS = (
    "silent",
    "crash",
    "flip",
    "equivocator",
    "chaos",
    "clone-chaos",
    "mirror",
    "ghost-imposter",
    "ghost-partition",
)
UNRESTRICTED_ONLY_KINDS = ("duplicator",)

#: Timing kinds per synchrony.  Synchronous cells run lock-step only;
#: partially synchronous cells churn over drop schedules and both
#: delay-policy families.  Every drawn GST stays within the harness's
#: horizon allowance (``_max_gst = 16``), so non-termination inside the
#: horizon is a genuine violation, never an under-budgeted run.
SYNC_TIMINGS = ("none",)
PSYNC_TIMINGS = ("none", "silence-gst", "drops", "punctual", "eventual")


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InstanceSpec:
    """One soak instance, fully determined and content-addressed.

    Everything an execution needs is derivable from the spec: the named
    dimensions select *which* battery entry to use, and ``seed`` (itself
    derived via ``stable_seed`` from the farm seed and index) drives
    every numeric sub-draw inside :func:`build_instance`.  Two specs
    with equal fields produce byte-identical executions.
    """

    profile: str
    index: int
    cell: str
    n: int
    ell: int
    t: int
    synchrony: str
    numerate: bool
    restricted: bool
    assignment: str
    byzantine: tuple[int, ...]
    inputs: str
    adversary: str
    timing: str
    seed: int

    def params(self) -> SystemParams:
        """The instance's :class:`SystemParams`."""
        return SystemParams(
            n=self.n, ell=self.ell, t=self.t,
            synchrony=_SYNCHRONY[self.synchrony],
            numerate=self.numerate, restricted=self.restricted,
        )

    @property
    def instance_id(self) -> str:
        """Content hash of the spec -- the log row identity.

        Covers :data:`SOAK_SCHEMA`, so logs written by a different
        sampling schema resume-miss instead of mixing rows.
        """
        payload = canonical_json([SOAK_SCHEMA, asdict(self)])
        return hashlib.sha1(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        """Compact human-readable instance label (the log row label)."""
        byz = ",".join(str(b) for b in self.byzantine)
        return (
            f"{self.cell}/{self.assignment}/b[{byz}]/"
            f"{self.inputs}/{self.adversary}/{self.timing}"
        )


def sample_instance(
    profile_name: str, farm_seed: int, index: int
) -> InstanceSpec:
    """Draw instance ``index`` of a farm's deterministic stream.

    The draw is a pure function of ``(profile, farm_seed, index)``:
    the dimension RNG is seeded with ``stable_seed`` over exactly that
    triple, so the stream is identical across machines, resumes, and
    batch boundaries -- sampling instance 7041 alone yields the same
    spec the full farm ran.

    Args:
        profile_name: A :data:`PROFILES` key.
        farm_seed: The farm's seed.
        index: Zero-based position in the instance stream.

    Returns:
        The frozen spec.
    """
    profile = get_profile(profile_name)
    rng = random.Random(
        stable_seed((farm_seed, "soak-sample", profile.name, index))
    )
    cell = rng.choices(
        profile.cells, weights=[c.weight for c in profile.cells]
    )[0]
    seed = stable_seed((farm_seed, "soak-instance", profile.name, index))

    assignments = assignment_battery(cell.n, cell.ell, seed=seed)
    assignment_name = rng.choice([name for name, _ in assignments])
    byzantine = tuple(sorted(rng.sample(range(cell.n), cell.t)))
    correct = [k for k in range(cell.n) if k not in byzantine]
    patterns = input_patterns(correct, BINARY, seed)
    inputs_name = rng.choice([name for name, _ in patterns])

    kinds = list(ADVERSARY_KINDS)
    if not cell.restricted:
        kinds.extend(UNRESTRICTED_ONLY_KINDS)
    adversary_kind = rng.choice(kinds)

    timings = SYNC_TIMINGS if cell.synchrony == "sync" else PSYNC_TIMINGS
    timing_kind = rng.choice(timings)

    return InstanceSpec(
        profile=profile.name,
        index=index,
        cell=cell.label,
        n=cell.n, ell=cell.ell, t=cell.t,
        synchrony=cell.synchrony,
        numerate=cell.numerate,
        restricted=cell.restricted,
        assignment=assignment_name,
        byzantine=byzantine,
        inputs=inputs_name,
        adversary=adversary_kind,
        timing=timing_kind,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Spec -> live objects
# ----------------------------------------------------------------------
@dataclass
class BuiltInstance:
    """The live objects of one spec, ready to run."""

    spec: InstanceSpec
    params: SystemParams
    assignment: IdentityAssignment
    byzantine: tuple[int, ...]
    proposals: dict[int, Hashable]
    adversary: Adversary
    timing: TimingModel
    horizon: int
    algorithm: str
    factory: object


def _resolve(name: str, battery, what: str):
    for entry_name, value in battery:
        if entry_name == name:
            return value
    raise ConfigurationError(
        f"spec names {what} {name!r} but the battery has "
        f"{[n for n, _ in battery]}"
    )


def build_instance(
    spec: InstanceSpec, problem: AgreementProblem = BINARY
) -> BuiltInstance:
    """Rebuild a spec's live execution objects.

    Numeric sub-parameters (crash round, drawn proposals, GSTs, delay
    deltas, ghost visibility) come from a build RNG seeded with
    ``stable_seed`` over the spec's own seed, so they reproduce whether
    the instance runs inside a farm batch or alone in a replay.

    Args:
        spec: The instance spec.
        problem: The agreement problem (the farm runs binary).

    Returns:
        The :class:`BuiltInstance`.

    Raises:
        ConfigurationError: The spec names an unknown battery entry or
            adversary/timing kind (a schema drift signal).
    """
    params = spec.params()
    rng = random.Random(stable_seed((spec.seed, "soak-build")))
    assignment = _resolve(
        spec.assignment,
        assignment_battery(spec.n, spec.ell, seed=spec.seed),
        "assignment",
    )
    correct = [k for k in range(spec.n) if k not in set(spec.byzantine)]
    proposals = _resolve(
        spec.inputs, input_patterns(correct, problem, spec.seed), "inputs"
    )
    algorithm, factory, horizon = algorithm_for(params, problem)
    adversary = _build_adversary(spec, rng, factory, problem, correct)
    timing = _build_timing(spec, rng)
    return BuiltInstance(
        spec=spec,
        params=params,
        assignment=assignment,
        byzantine=spec.byzantine,
        proposals=dict(proposals),
        adversary=adversary,
        timing=timing,
        horizon=horizon,
        algorithm=algorithm,
        factory=factory,
    )


def _build_adversary(
    spec: InstanceSpec,
    rng: random.Random,
    factory,
    problem: AgreementProblem,
    correct: list[int],
) -> Adversary:
    """Materialise the spec's adversary kind with seeded parameters."""
    kind = spec.adversary
    domain = problem.domain
    if kind == "silent":
        return NullAdversary()
    if kind == "crash":
        return CrashAdversary(
            factory,
            crash_round=rng.randint(1, 5),
            proposal=rng.choice(domain),
        )
    if kind == "flip":
        return InputFlipAdversary(factory, proposal=rng.choice(domain))
    if kind == "equivocator":
        return EquivocatorAdversary(factory)
    if kind == "duplicator":
        return DuplicatorAdversary(factory)
    if kind == "chaos":
        return RandomByzantineAdversary(
            seed=stable_seed((spec.seed, "soak-chaos")), burst=2
        )
    if kind == "clone-chaos":
        return CloneFairAdversary(
            RandomByzantineAdversary(
                seed=stable_seed((spec.seed, "soak-clone-chaos")), burst=2
            )
        )
    if kind == "mirror":
        return MirrorAdversary(
            factory,
            mirror_slot=spec.byzantine[0],
            mirror_input=rng.choice(domain),
        )
    if kind == "ghost-imposter":
        return GhostFaceAdversary(
            factory, GhostPlan(proposal=rng.choice(domain), visible=None)
        )
    if kind == "ghost-partition":
        half = max(1, len(correct) // 2)
        visible = tuple(sorted(rng.sample(correct, half)))
        return GhostFaceAdversary(
            factory,
            GhostPlan(proposal=rng.choice(domain), visible=visible),
        )
    raise ConfigurationError(f"unknown soak adversary kind {kind!r}")


def _build_timing(spec: InstanceSpec, rng: random.Random) -> TimingModel:
    """Materialise the spec's timing kind with seeded parameters.

    Every drawn GST (rounds for drop schedules, the policies'
    ``equivalent_basic_gst`` for delay models) stays at or below the
    harness's horizon allowance of 16 rounds.
    """
    kind = spec.timing
    if kind == "none":
        return timing_model_for(None, None)
    if kind == "silence-gst":
        return timing_model_for(SilenceUntil(rng.choice((4, 8, 12, 16))), None)
    if kind == "drops":
        return timing_model_for(
            RandomDrops(
                gst=rng.choice((8, 12)),
                p=rng.choice((0.2, 0.4)),
                seed=stable_seed((spec.seed, "soak-drops")),
            ),
            None,
        )
    if kind == "punctual":
        return DelayBased(
            AlwaysBoundedUnknownDelays(
                true_delta=rng.choice((2, 3)),
                seed=stable_seed((spec.seed, "soak-punctual")),
            )
        )
    if kind == "eventual":
        delta = rng.choice((2, 3))
        return DelayBased(
            EventuallyBoundedDelays(
                delta=delta,
                gst_tick=delta * rng.choice((6, 8)),
                chaos_factor=rng.choice((4, 6)),
                seed=stable_seed((spec.seed, "soak-eventual")),
            )
        )
    raise ConfigurationError(f"unknown soak timing kind {kind!r}")


# ----------------------------------------------------------------------
# Solo execution (the replay tool)
# ----------------------------------------------------------------------
def run_instance(
    spec: InstanceSpec, problem: AgreementProblem = BINARY
) -> dict:
    """Run one soak instance alone and return its record.

    This is the replay path: the same record the farm's batched window
    execution produced for this index (batched kernels share no state,
    so batch and solo runs are bit-identical).

    Args:
        spec: The instance spec.
        problem: The agreement problem.

    Returns:
        A run-record-shaped dict: ``label`` / ``ok`` / ``detail`` /
        ``rounds`` / ``messages`` / ``losses``.
    """
    built = build_instance(spec, problem)
    result = run_agreement(
        params=built.params,
        assignment=built.assignment,
        factory=built.factory,
        proposals=built.proposals,
        byzantine=built.byzantine,
        adversary=built.adversary,
        timing=built.timing,
        max_rounds=built.horizon,
    )
    brief = result.brief()
    return {
        "label": spec.describe(),
        "ok": brief.ok,
        "detail": brief.detail,
        "rounds": brief.rounds,
        "messages": brief.messages,
        "losses": brief.losses,
    }
