"""The soak farm driver: sustained agreement traffic with a streaming log.

One :func:`run_soak` call drives the deterministic instance stream of a
profile (:mod:`repro.soak.mixture`) window by window:

1. every window of ``window`` consecutive instances becomes one
   ``kind="soak"`` campaign unit
   (:func:`repro.experiments.campaign.enumerate_soak_units` shape),
   executed on batched kernels and fanned out over the campaign
   engine's shared pool loop (:func:`repro.experiments.campaign.
   execute_units`) with its content-hash disk cache and prompt
   cancel-on-first-failure;
2. finished windows stream into an append-only JSONL log
   (:class:`~repro.atlas.stream.AtlasLog`) **in stream order** -- one
   row per instance plus one *checkpoint row* per window carrying the
   cumulative verdict/latency/loss counters
   (:class:`~repro.sim.metrics.WindowAggregator`);
3. the farm stops at the ``instances`` budget, the ``duration``
   wall-clock budget, or never (both ``None`` is refused -- pass an
   explicit budget).

Resume contract: every row is a deterministic function of
``(profile, seed, index)`` -- no wall-clock data is ever logged -- and
row ids are content hashes (:data:`~repro.soak.mixture.SOAK_SCHEMA`
salted), so ``resume=True`` keeps the longest valid prefix of an
existing log (torn final lines repaired, mid-window kills resumed
mid-window) and the finished log is **byte-identical** to an
uninterrupted run with the same seed and budget.  Throughput is
reported on the outcome only, never logged.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping

from repro.atlas.stream import AtlasLog
from repro.core.canonical import canonical_json
from repro.core.errors import ConfigurationError, SimulationError
from repro.experiments.campaign import (
    CampaignCache,
    CampaignUnit,
    execute_units,
)
from repro.sim.metrics import WindowAggregator
from repro.soak.mixture import SOAK_SCHEMA, get_profile, sample_instance


def checkpoint_id(
    profile: str, seed: int, window_index: int, end: int
) -> str:
    """Content hash of a checkpoint row's identity.

    Covers the window's position *and* the stream offset it closes at
    (``end``), so a short final window of a smaller budget never
    collides with the same-index full window of a larger one -- resume
    cuts the prefix at the divergence instead of mixing budgets.
    """
    payload = canonical_json(
        [SOAK_SCHEMA, "checkpoint", profile, seed, window_index, end]
    )
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def window_plan(
    instances: int, window: int
) -> list[tuple[int, int, int]]:
    """The ``(window_index, start, count)`` triples of a bounded farm."""
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    return [
        (w, start, min(window, instances - start))
        for w, start in enumerate(range(0, instances, window))
    ]


def expected_row_ids(
    profile: str, seed: int, instances: int, window: int
) -> list[str]:
    """The full expected log-row id sequence of a bounded farm.

    Per window: one instance id per index, then the checkpoint id.
    This is what :meth:`~repro.atlas.stream.AtlasLog.resume_prefix`
    validates an existing log against.
    """
    ids: list[str] = []
    for w, start, count in window_plan(instances, window):
        for index in range(start, start + count):
            ids.append(sample_instance(profile, seed, index).instance_id)
        ids.append(checkpoint_id(profile, seed, w, start + count))
    return ids


@dataclass
class SoakOutcome:
    """Aggregate outcome of one soak run.

    Per-instance rows live in the JSONL log; this object stays O(1) in
    the stream length.  ``instances`` and the verdict/cost counters are
    *cumulative over the log* (resumed rows included); ``elapsed_s``
    and :meth:`throughput` cover this call's wall clock only and are
    never written to the log.
    """

    profile: str
    seed: int
    window: int
    log_path: Path
    budget: int | None = None
    resumed_rows: int = 0
    written_rows: int = 0
    executed_windows: int = 0
    cached_windows: int = 0
    instances: int = 0
    ok: int = 0
    violations: int = 0
    rounds: int = 0
    messages: int = 0
    losses: int = 0
    executed_instances: int = 0
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        """True when no instance violated agreement."""
        return self.violations == 0

    def throughput(self) -> float:
        """Executed instances per second of this call's wall clock."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.executed_instances / self.elapsed_s

    def summary(self) -> str:
        """One-paragraph human-readable tally."""
        return (
            f"soak[{self.profile}] seed={self.seed}: "
            f"{self.instances} instances "
            f"({self.resumed_rows} rows resumed, "
            f"{self.cached_windows} windows cached, "
            f"{self.executed_windows} executed) -- "
            f"{self.ok} ok, {self.violations} violations, "
            f"{self.losses} loss edges, "
            f"{self.rounds} rounds, {self.messages} messages; "
            f"{self.executed_instances} instances this call in "
            f"{self.elapsed_s:.2f}s ({self.throughput():.0f}/s)"
        )


def _instance_row(spec, record: Mapping) -> dict:
    """One deterministic log row for a finished instance."""
    if record["label"] != spec.describe():
        # The worker sampled a different spec for this index than the
        # driver -- sampling code drift between processes, never
        # tolerable in a content-addressed stream.
        raise SimulationError(
            f"soak instance {spec.index} label mismatch: worker ran "
            f"{record['label']!r}, driver expected {spec.describe()!r}"
        )
    return {
        "unit_id": spec.instance_id,
        "kind": "instance",
        "index": spec.index,
        "label": record["label"],
        "ok": record["ok"],
        "detail": record["detail"],
        "rounds": record["rounds"],
        "messages": record["messages"],
        "losses": record["losses"],
    }


def _covering_expected_ids(
    log: AtlasLog, profile: str, seed: int, window: int
) -> list[str]:
    """Expected ids covering every line of an unbounded farm's log.

    Duration-budget farms have no fixed instance count, so the expected
    sequence is generated just far enough to cover the file's existing
    lines (each window contributes ``window + 1`` rows).
    """
    if not log.path.exists():
        return []
    with log.path.open("rb") as fh:
        lines = sum(1 for _ in fh)
    windows = lines // (window + 1) + 1
    return expected_row_ids(profile, seed, windows * window, window)


def run_soak(
    profile: str,
    seed: int = 0,
    instances: int | None = None,
    duration: float | None = None,
    window: int = 250,
    workers: int = 1,
    cache: CampaignCache | None = None,
    resume: bool = False,
    log_path: str = "soak.jsonl",
    progress: Callable[[str], None] | None = None,
) -> SoakOutcome:
    """Run the farm to an instance and/or wall-clock budget.

    Args:
        profile: A :data:`~repro.soak.mixture.PROFILES` key.
        seed: The farm seed (fixes the whole instance stream).
        instances: Total instance budget; ``None`` for unbounded
            (requires ``duration``).
        duration: Wall-clock budget in seconds; checked between
            scheduling waves, so the farm overshoots by at most one
            wave of in-flight windows.
        window: Instances per window (the checkpoint cadence and the
            pool's unit of work).
        workers: Pool size; ``<= 1`` executes windows inline.
        cache: Optional campaign unit cache; finished windows are
            always stored when given.
        resume: Keep the valid prefix of an existing log (and consult
            the unit cache), so only missing work executes.
        log_path: The streaming JSONL metrics log (truncated unless
            ``resume``).
        progress: Optional callback receiving one line per window.

    Returns:
        The :class:`SoakOutcome` (per-instance rows are in the log).

    Raises:
        ConfigurationError: No budget at all, or a bad window size.
        SimulationError: A worker's records diverge from the driver's
            sampled stream (sampling schema drift).
    """
    start_clock = time.perf_counter()  # reprolint: disable=RL002 -- diagnostic timing only
    get_profile(profile)
    if instances is None and duration is None:
        raise ConfigurationError(
            "a soak run needs a budget: pass instances=, duration=, or both"
        )
    if instances is not None and instances < 0:
        raise ConfigurationError(f"instances must be >= 0, got {instances}")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")

    log = AtlasLog(log_path)
    outcome = SoakOutcome(
        profile=profile, seed=seed, window=window,
        log_path=log.path, budget=instances,
    )
    agg = WindowAggregator()
    completed_windows = 0
    skip_in_window = 0
    if resume:
        if instances is not None:
            expected = expected_row_ids(profile, seed, instances, window)
        else:
            expected = _covering_expected_ids(log, profile, seed, window)
        outcome.resumed_rows = log.resume_prefix(expected)
        for row in log.rows(limit=outcome.resumed_rows):
            if row.get("kind") == "checkpoint":
                completed_windows += 1
                skip_in_window = 0
            else:
                agg.add_record(row)
                skip_in_window += 1
    else:
        log.reset()

    total_windows = (
        None if instances is None else len(window_plan(instances, window))
    )

    def plan_entry(w: int) -> tuple[int, int, int]:
        start = w * window
        count = (
            window if instances is None
            else min(window, instances - start)
        )
        return (w, start, count)

    # ``enumerate_soak_units`` builds the whole bounded plan at once;
    # unbounded farms construct window units one at a time, so the unit
    # layout is restated here (kept in lockstep by a regression test).
    def unit_for(w: int) -> CampaignUnit:
        _, start, count = plan_entry(w)
        return CampaignUnit(
            label=f"soak/{profile}",
            n=1, ell=1, t=0,
            synchrony="sync", numerate=False, restricted=False,
            kind="soak",
            assignment_index=start,
            byzantine_index=count,
            seed=seed,
            variant=profile,
        )

    next_window = completed_windows  # write frontier
    cursor = completed_windows       # next window to schedule
    reorder: dict[int, Mapping] = {}

    def flush() -> None:
        """Append every window whose predecessors are all written."""
        nonlocal next_window, skip_in_window
        while next_window in reorder:
            w, start, count = plan_entry(next_window)
            records = list(reorder.pop(next_window)["records"])
            if len(records) != count:
                raise SimulationError(
                    f"soak window {w} returned {len(records)} records, "
                    f"expected {count}"
                )
            rows = []
            for offset, record in enumerate(records):
                if offset < skip_in_window:
                    continue  # already on disk from the resumed prefix
                spec = sample_instance(profile, seed, start + offset)
                rows.append(_instance_row(spec, record))
                agg.add_record(record)
            rows.append(
                {
                    "unit_id": checkpoint_id(profile, seed, w, start + count),
                    "kind": "checkpoint",
                    "window": w,
                    **agg.snapshot(),
                }
            )
            log.append_many(rows)
            outcome.written_rows += len(rows)
            skip_in_window = 0
            next_window += 1
            if progress:
                progress(
                    f"window {w}: +{count} instances "
                    f"(cum {agg.instances}, {agg.violations} violations)"
                )

    def elapsed() -> float:
        return time.perf_counter() - start_clock  # reprolint: disable=RL002 -- diagnostic timing only

    wave_size = max(4, 2 * max(1, workers))
    units_by_id: dict[str, int] = {}

    def finish(unit: CampaignUnit, result: dict) -> None:
        if cache is not None:
            cache.store(unit, result)
        outcome.executed_windows += 1
        w = units_by_id[unit.unit_id]
        outcome.executed_instances += len(result["records"])
        reorder[w] = result

    try:
        while total_windows is None or next_window < total_windows:
            if duration is not None and elapsed() >= duration:
                break
            wave: list[tuple[int, CampaignUnit]] = []
            while len(wave) < wave_size and (
                total_windows is None or cursor < total_windows
            ):
                wave.append((cursor, unit_for(cursor)))
                cursor += 1
            if not wave:
                break
            pending: list[CampaignUnit] = []
            for w, unit in wave:
                units_by_id[unit.unit_id] = w
                hit = (
                    cache.load(unit)
                    if (cache is not None and resume) else None
                )
                if hit is not None:
                    outcome.cached_windows += 1
                    reorder[w] = hit
                else:
                    pending.append(unit)
            if pending:
                execute_units(pending, workers, finish)
            flush()
    finally:
        outcome.elapsed_s = elapsed()
        outcome.instances = agg.instances
        outcome.ok = agg.ok
        outcome.violations = agg.violations
        outcome.rounds = agg.rounds
        outcome.messages = agg.messages
        outcome.losses = agg.losses
    return outcome


def stream_rows(log_path: str) -> Iterator[dict]:
    """Stream a soak log's rows (instances and checkpoints).

    Thin reader over :meth:`~repro.atlas.stream.AtlasLog.rows`, so the
    torn-final-line tolerance and the mid-file
    :class:`~repro.core.errors.AtlasLogCorrupt` contract apply.
    """
    yield from AtlasLog(log_path).rows()
