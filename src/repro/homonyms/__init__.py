"""Synchronous homonym agreement: the Figure 3 transformation."""

from repro.homonyms.transform import (
    DECIDE_TAG,
    ROUNDS_PER_PHASE,
    RUN_TAG,
    SELECT_TAG,
    HomonymProcess,
    transform_factory,
    transform_horizon,
)

__all__ = [
    "DECIDE_TAG",
    "HomonymProcess",
    "ROUNDS_PER_PHASE",
    "RUN_TAG",
    "SELECT_TAG",
    "transform_factory",
    "transform_horizon",
]
