"""The Figure 3 transformation ``T(A)``: synchronous BA with homonyms.

Given any classic synchronous Byzantine agreement algorithm ``A`` for
``ell`` uniquely-identified processes (in the Figure 2 functional form),
``T(A)`` solves Byzantine agreement for **n >= ell processes sharing
ell identifiers**, provided ``ell > 3t`` -- matching the paper's tight
synchronous bound (Theorem 3).  It works even when processes are
innumerate.

Three engine rounds (a *phase*) simulate one round of ``A``.  Phase
``r`` (0-indexed; simulating ``A``'s round ``r + 1``) consists of:

1. **selection round** -- every process broadcasts its current state of
   ``A``; each process adopts the deterministically smallest valid state
   broadcast under *its own identifier*.  A fully correct group ``G(i)``
   thereby agrees on a common state and acts as a single correct
   process of ``A`` from then on.
2. **deciding round** -- every process broadcasts ``decide(s)``; any
   process seeing the same non-``None`` value from ``t + 1`` distinct
   identifiers decides it.  At least one of those identifiers belongs
   to a fully correct group, so the value is ``A``'s decision.  This
   round is what lets a correct process that *shares its identifier
   with a Byzantine process* terminate: its own group may be poisoned,
   but ``ell > 3t`` guarantees at least ``t + 1`` clean groups announce
   the decision.
3. **running round** -- every process broadcasts ``M(s, r)`` and runs
   ``A``'s transition on the received messages, after discarding every
   identifier that equivocated (sent two distinct messages) this round;
   an equivocating group is indistinguishable from a single Byzantine
   process, and ``A`` tolerates those.

The correctness argument (Proposition 2) is a simulation: executions of
``T(A)`` project onto executions of ``A`` in which identifier ``i`` is
correct iff ``G(i)`` contains no Byzantine process.  At most ``t``
groups are poisoned, so ``A`` runs with at most ``t`` faults among
``ell > 3t`` processes and its own correctness carries over.
"""

from __future__ import annotations

from typing import Hashable

from repro.classic.spec import ClassicSpec, filter_equivocators
from repro.core.errors import BoundViolation
from repro.core.messages import Inbox
from repro.sim.process import Process

#: Payload tags for the three rounds of a phase.
SELECT_TAG = "T-select"
DECIDE_TAG = "T-decide"
RUN_TAG = "T-run"

#: Number of engine rounds per simulated round of ``A``.
ROUNDS_PER_PHASE = 3


class HomonymProcess(Process):
    """One homonym process executing ``T(A)`` (Figure 3)."""

    def __init__(
        self,
        spec: ClassicSpec,
        identifier: int,
        proposal: Hashable,
        unchecked: bool = False,
    ) -> None:
        super().__init__(identifier, proposal)
        if spec.ell <= 3 * spec.t and not unchecked:
            raise BoundViolation(
                f"T(A) requires ell > 3t, got ell={spec.ell}, t={spec.t}; "
                f"pass unchecked=True only for lower-bound demonstrations"
            )
        self.spec = spec
        self.state = spec.init(identifier, proposal)

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    @staticmethod
    def phase_of(round_no: int) -> tuple[int, int]:
        """Map an engine round to ``(phase, sub-round)``."""
        return divmod(round_no, ROUNDS_PER_PHASE)[0], round_no % ROUNDS_PER_PHASE

    def compose(self, round_no: int) -> Hashable:
        phase, sub = self.phase_of(round_no)
        if sub == 0:
            return (SELECT_TAG, phase, self.state)
        if sub == 1:
            return (DECIDE_TAG, phase, self.spec.decide(self.state))
        return (RUN_TAG, phase, self.spec.message(self.state, phase + 1))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        phase, sub = self.phase_of(round_no)
        if sub == 0:
            self._select_state(phase, inbox)
        elif sub == 1:
            self._check_group_decisions(phase, inbox, round_no)
        else:
            self._run_step(phase, inbox)

    # ------------------------------------------------------------------
    # Sub-round implementations
    # ------------------------------------------------------------------
    def _select_state(self, phase: int, inbox: Inbox) -> None:
        """Line 5 of Figure 3: adopt the canonical state of the group.

        Candidates are the structurally valid states broadcast under our
        own identifier this phase (always non-empty: self-delivery
        includes our own).  The deterministic choice is the ``repr``
        minimum, so all correct members of a fully correct group select
        the same state.
        """
        candidates = []
        for m in inbox.from_identifier(self.identifier):
            payload = m.payload
            if not (isinstance(payload, tuple) and len(payload) == 3):
                continue
            tag, ph, state = payload
            if tag != SELECT_TAG or ph != phase:
                continue
            if self.spec.is_state(state):
                candidates.append(state)
        if candidates:
            self.state = min(candidates, key=repr)
        # else: keep the current state (can only happen if even our own
        # message failed validation, which would be a spec bug).

    def _check_group_decisions(
        self, phase: int, inbox: Inbox, round_no: int
    ) -> None:
        """Lines 8-9 of Figure 3: decide on ``t + 1`` identifier support."""

        def extract(m):
            payload = m.payload
            if not (isinstance(payload, tuple) and len(payload) == 3):
                return None
            tag, ph, value = payload
            if tag != DECIDE_TAG or ph != phase or value is None:
                return None
            return value

        support = inbox.values_with_id_support(extract)
        decidable = sorted(
            (value for value, ids in support.items() if len(ids) >= self.spec.t + 1),
            key=repr,
        )
        if decidable:
            self.record_decision(decidable[0], round_no)

    def _run_step(self, phase: int, inbox: Inbox) -> None:
        """Lines 12-15 of Figure 3: filter equivocators, run ``A``'s step."""

        def is_run_message(payload: Hashable) -> bool:
            return (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == RUN_TAG
                and payload[1] == phase
            )

        per_id = filter_equivocators(inbox, select=is_run_message)
        received = {
            ident: payload[2]
            for ident, payload in per_id.items()
            if payload[2] is not None
        }
        self.state = self.spec.transition(self.state, phase + 1, received)


def transform_factory(spec: ClassicSpec, unchecked: bool = False):
    """Process factory for :func:`repro.sim.runner.run_agreement`.

    ``T(A)`` needs ``spec.max_rounds`` phases of three rounds, plus one
    extra phase so the deciding round after ``A``'s last transition can
    run; use :func:`transform_horizon` for a safe round budget.
    """

    def factory(identifier: int, proposal: Hashable) -> HomonymProcess:
        return HomonymProcess(spec, identifier, proposal, unchecked=unchecked)

    return factory


def transform_horizon(spec: ClassicSpec, slack_phases: int = 2) -> int:
    """Engine rounds by which every correct process must have decided."""
    return ROUNDS_PER_PHASE * (spec.max_rounds + 1 + slack_phases)
