"""Identifier assignment: mapping ``n`` processes onto ``ell`` identifiers.

The defining feature of the homonym model is that several processes may
share an authenticated identifier.  An :class:`IdentityAssignment` maps
process *indices* ``0..n-1`` (simulation-level names, invisible to the
algorithms, mirroring the paper's convention that proofs may name
processes ``p`` while algorithms cannot) onto identifiers ``1..ell``.

The module also provides the assignment generators used by the
experiment harness: balanced, skewed, single-stack (the ``n - ell + 1``
clone worst case used throughout the paper's lower bounds), and seeded
random assignments.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class IdentityAssignment:
    """An assignment of identifiers to processes.

    ``ids[k]`` is the identifier of the process with simulation index
    ``k``.  Identifiers are integers ``1..ell``; the constructor checks
    that every identifier in that range is assigned to at least one
    process (the paper requires each identifier to be held by at least
    one process).
    """

    ell: int
    ids: tuple[int, ...]
    _groups: Mapping[int, tuple[int, ...]] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if self.ell < 1:
            raise ConfigurationError(f"ell must be >= 1, got {self.ell}")
        if len(self.ids) < self.ell:
            raise ConfigurationError(
                f"{len(self.ids)} processes cannot cover {self.ell} identifiers"
            )
        seen = set(self.ids)
        expected = set(range(1, self.ell + 1))
        if not seen <= expected:
            raise ConfigurationError(
                f"identifiers out of range 1..{self.ell}: {sorted(seen - expected)}"
            )
        if seen != expected:
            raise ConfigurationError(
                f"unassigned identifiers: {sorted(expected - seen)}"
            )
        groups: dict[int, list[int]] = {i: [] for i in range(1, self.ell + 1)}
        for index, ident in enumerate(self.ids):
            groups[ident].append(index)
        object.__setattr__(
            self,
            "_groups",
            {i: tuple(members) for i, members in groups.items()},
        )

    def __deepcopy__(self, memo) -> "IdentityAssignment":
        # Frozen after __post_init__; engine checkpoints share it.
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processes."""
        return len(self.ids)

    def identifier_of(self, index: int) -> int:
        """Identifier of the process with simulation index ``index``."""
        return self.ids[index]

    def group(self, ident: int) -> tuple[int, ...]:
        """Indices of all processes holding identifier ``ident``.

        The paper calls this set ``G(i)``.
        """
        if ident not in self._groups:
            raise ConfigurationError(f"unknown identifier {ident}")
        return self._groups[ident]

    def groups(self) -> Mapping[int, tuple[int, ...]]:
        """Mapping ``identifier -> process indices`` for all groups."""
        return dict(self._groups)

    def group_sizes(self) -> dict[int, int]:
        """Mapping ``identifier -> number of holders``."""
        return {i: len(members) for i, members in self._groups.items()}

    def sole_owner_ids(self) -> tuple[int, ...]:
        """Identifiers held by exactly one process (non-homonyms)."""
        return tuple(
            ident
            for ident, members in sorted(self._groups.items())
            if len(members) == 1
        )

    def homonym_ids(self) -> tuple[int, ...]:
        """Identifiers shared by two or more processes."""
        return tuple(
            ident
            for ident, members in sorted(self._groups.items())
            if len(members) > 1
        )

    def counts(self) -> Counter:
        """Multiset of identifiers as a :class:`collections.Counter`."""
        return Counter(self.ids)

    def describe(self) -> str:
        sizes = self.group_sizes()
        parts = [f"{ident}x{sizes[ident]}" for ident in sorted(sizes)]
        return f"n={self.n} ell={self.ell} [" + " ".join(parts) + "]"


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def balanced_assignment(n: int, ell: int) -> IdentityAssignment:
    """Spread ``n`` processes over ``ell`` identifiers as evenly as possible.

    Process ``k`` receives identifier ``(k mod ell) + 1``, so group sizes
    differ by at most one.
    """
    if n < ell:
        raise ConfigurationError(f"need n >= ell, got n={n}, ell={ell}")
    return IdentityAssignment(ell, tuple((k % ell) + 1 for k in range(n)))


def stacked_assignment(n: int, ell: int, stacked_id: int = 1) -> IdentityAssignment:
    """All excess processes pile onto one identifier.

    Identifier ``stacked_id`` is held by ``n - ell + 1`` processes and
    every other identifier by exactly one.  This is the worst case used
    by the clone arguments (Theorem 19) and the partition construction
    (Proposition 4): a maximal stack of homonyms.
    """
    if n < ell:
        raise ConfigurationError(f"need n >= ell, got n={n}, ell={ell}")
    if not 1 <= stacked_id <= ell:
        raise ConfigurationError(f"stacked_id out of range: {stacked_id}")
    singles = [ident for ident in range(1, ell + 1) if ident != stacked_id]
    ids = [stacked_id] * (n - ell + 1) + singles
    return IdentityAssignment(ell, tuple(ids))


def assignment_from_sizes(sizes: Mapping[int, int]) -> IdentityAssignment:
    """Build an assignment from explicit group sizes.

    ``sizes`` maps each identifier (which must form the contiguous range
    ``1..ell``) to the number of processes holding it.  Processes are
    indexed group by group in identifier order.
    """
    ell = len(sizes)
    if set(sizes) != set(range(1, ell + 1)):
        raise ConfigurationError(
            f"sizes must cover identifiers 1..{ell}, got {sorted(sizes)}"
        )
    ids: list[int] = []
    for ident in range(1, ell + 1):
        count = sizes[ident]
        if count < 1:
            raise ConfigurationError(
                f"identifier {ident} must have at least one process"
            )
        ids.extend([ident] * count)
    return IdentityAssignment(ell, tuple(ids))


def random_assignment(
    n: int, ell: int, seed: int | random.Random = 0
) -> IdentityAssignment:
    """Seeded random assignment: cover ``1..ell`` then assign the rest uniformly."""
    if n < ell:
        raise ConfigurationError(f"need n >= ell, got n={n}, ell={ell}")
    # reprolint: disable=RL003 -- int-or-Random seed (salt-free); the
    # stream is pinned by cached campaign records.
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    ids = list(range(1, ell + 1))
    ids.extend(rng.randrange(1, ell + 1) for _ in range(n - ell))
    rng.shuffle(ids)
    return IdentityAssignment(ell, tuple(ids))


def all_assignments(n: int, ell: int) -> Iterable[IdentityAssignment]:
    """Enumerate all assignments of ``n`` processes to ``ell`` identifiers.

    Exponential in ``n``; intended for exhaustive small-case testing
    (``n <= 8`` or so).  Assignments that do not cover every identifier
    are skipped.
    """
    def rec(prefix: list[int]) -> Iterable[tuple[int, ...]]:
        if len(prefix) == n:
            if set(prefix) == set(range(1, ell + 1)):
                yield tuple(prefix)
            return
        remaining = n - len(prefix)
        missing = set(range(1, ell + 1)) - set(prefix)
        if len(missing) > remaining:
            return
        for ident in range(1, ell + 1):
            prefix.append(ident)
            yield from rec(prefix)
            prefix.pop()

    for ids in rec([]):
        yield IdentityAssignment(ell, ids)


def byzantine_sets(
    assignment: IdentityAssignment, t: int, seed: int | random.Random = 0
) -> tuple[int, ...]:
    """Pick a seeded random set of at most ``t`` Byzantine process indices."""
    # reprolint: disable=RL003 -- int-or-Random seed (salt-free); the
    # stream is pinned by cached campaign records.
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    count = min(t, assignment.n)
    return tuple(sorted(rng.sample(range(assignment.n), count)))
