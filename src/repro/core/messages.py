"""Authenticated messages and round inboxes.

A message in the homonym model carries only its *content* and the
authenticated *identifier* of its sender.  The receiver learns nothing
else: it cannot tell which of the (possibly many) processes holding
that identifier produced the message, and it cannot address a reply to
an individual process -- only to everyone (the paper's algorithms all
broadcast, encoding any recipient filtering inside the payload).

Two delivery semantics exist:

* **innumerate** -- the round inbox is a *set*: identical
  ``(identifier, payload)`` pairs collapse, so a process cannot count
  how many homonyms sent the same thing;
* **numerate** -- the round inbox is a *multiset*: each physical message
  is delivered separately and copies can be counted.

Payloads must be hashable (tuples, frozensets, strings, numbers); the
network engine enforces this eagerly so that a mutable payload fails at
send time rather than corrupting a set-based inbox later.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator

from repro.core.errors import ProtocolViolation


@dataclass(frozen=True)
class Message:
    """An authenticated message: sender identifier plus payload.

    The paper writes ``m.id`` and ``m.val``; those names are provided as
    aliases.  Ordering is defined (identifier first, then a canonical
    payload key) so inboxes can be iterated deterministically.
    """

    sender_id: int
    payload: Hashable

    @property
    def id(self) -> int:  # noqa: A003 - matches the paper's ``m.id``
        return self.sender_id

    @property
    def val(self) -> Hashable:
        return self.payload

    def __lt__(self, other: "Message") -> bool:  # deterministic, type-agnostic
        if not isinstance(other, Message):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple[int, str]:
        return (self.sender_id, repr(self.payload))


def ensure_hashable(payload: Any) -> Hashable:
    """Validate that ``payload`` is usable as message content.

    Raises :class:`ProtocolViolation` when the payload is unhashable
    (lists, dicts, sets), which would break set-based inboxes.
    """
    try:
        hash(payload)
    except TypeError as exc:
        raise ProtocolViolation(
            f"message payloads must be hashable, got {type(payload).__name__}: "
            f"{payload!r}"
        ) from exc
    return payload


class Inbox:
    """One round's worth of received messages.

    An :class:`Inbox` is constructed by the network engine from the
    physical messages delivered to one process in one round.  The
    ``numerate`` flag selects multiset or set semantics; in the
    innumerate case duplicate ``(identifier, payload)`` pairs are
    collapsed before the algorithm ever sees them, so innumerate
    algorithms physically cannot count copies.

    The class offers the counting helpers the paper's algorithms use:
    *distinct identifiers* that sent a matching message, and (numerate
    only) *copy counts*.
    """

    __slots__ = ("_messages", "_numerate")

    def __init__(self, messages: Iterable[Message], numerate: bool) -> None:
        msgs = list(messages)
        # Sorting by explicit key computes each message's (id, repr)
        # pair once instead of once per comparison; same total order as
        # Message.__lt__, so canonical inbox bytes are unchanged.
        if not numerate:
            msgs = sorted(set(msgs), key=Message.sort_key)
        else:
            msgs = sorted(msgs, key=Message.sort_key)
        self._messages: tuple[Message, ...] = tuple(msgs)
        self._numerate = bool(numerate)

    @classmethod
    def from_canonical(
        cls, messages: tuple[Message, ...], numerate: bool
    ) -> "Inbox":
        """Wrap an already-canonical message tuple without re-sorting.

        The network engine's message fabric canonicalises each round's
        shared delivery multiset exactly once and then stamps out one
        inbox per receiver from it; this constructor skips the sort and
        dedup work :meth:`__init__` would repeat.  The caller guarantees
        ``messages`` is the ``messages()`` tuple of an :class:`Inbox`
        built with the same ``numerate`` flag -- passing anything else
        breaks the deterministic-ordering contract.

        Args:
            messages: A canonically ordered (and, if innumerate,
                deduplicated) message tuple.
            numerate: The delivery semantics flag.

        Returns:
            An inbox sharing ``messages`` without copying.
        """
        inbox = cls.__new__(cls)
        inbox._messages = messages
        inbox._numerate = bool(numerate)
        return inbox

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    @property
    def numerate(self) -> bool:
        return self._numerate

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, message: Message) -> bool:
        return message in self._messages

    def __repr__(self) -> str:
        kind = "numerate" if self._numerate else "innumerate"
        return f"Inbox({kind}, {len(self._messages)} messages)"

    def messages(self) -> tuple[Message, ...]:
        """All messages, deterministically ordered."""
        return self._messages

    # ------------------------------------------------------------------
    # Counting helpers
    # ------------------------------------------------------------------
    def from_identifier(self, ident: int) -> tuple[Message, ...]:
        """All messages whose authenticated sender identifier is ``ident``."""
        return tuple(m for m in self._messages if m.sender_id == ident)

    def payloads_from(self, ident: int) -> tuple[Hashable, ...]:
        """Payloads received from identifier ``ident`` (ordered, may repeat)."""
        return tuple(m.payload for m in self._messages if m.sender_id == ident)

    def distinct_ids(
        self, predicate: Callable[[Message], bool] | None = None
    ) -> frozenset[int]:
        """Identifiers that sent at least one message matching ``predicate``."""
        if predicate is None:
            return frozenset(m.sender_id for m in self._messages)
        return frozenset(m.sender_id for m in self._messages if predicate(m))

    def count_distinct_ids(
        self, predicate: Callable[[Message], bool] | None = None
    ) -> int:
        """Number of distinct identifiers with a matching message."""
        return len(self.distinct_ids(predicate))

    def count_copies(self, message: Message) -> int:
        """Copies of an exact message.  Requires numerate delivery.

        Innumerate processes *cannot* count; calling this on an
        innumerate inbox raises :class:`ProtocolViolation` -- this is how
        the package enforces that innumerate algorithms never peek at
        multiplicities.
        """
        if not self._numerate:
            raise ProtocolViolation(
                "count_copies() requires numerate delivery; this inbox is a set"
            )
        return sum(1 for m in self._messages if m == message)

    def count_matching(self, predicate: Callable[[Message], bool]) -> int:
        """Number of physical messages matching ``predicate``.

        Requires numerate delivery for the same reason as
        :meth:`count_copies`.
        """
        if not self._numerate:
            raise ProtocolViolation(
                "count_matching() requires numerate delivery; this inbox is a set"
            )
        return sum(1 for m in self._messages if predicate(m))

    def payload_counter(self) -> Counter:
        """Multiset of ``(identifier, payload)`` pairs (numerate only)."""
        if not self._numerate:
            raise ProtocolViolation(
                "payload_counter() requires numerate delivery; this inbox is a set"
            )
        return Counter((m.sender_id, m.payload) for m in self._messages)

    def values_with_id_support(self, extract: Callable[[Message], Hashable | None]
                               ) -> dict[Hashable, frozenset[int]]:
        """Group identifier support by extracted value.

        ``extract`` maps a message to a value (or ``None`` to skip the
        message); the result maps each value to the set of identifiers
        that sent a message carrying it.  This is the common shape of
        the paper's threshold tests ("received v from t+1 different
        identifiers").
        """
        support: dict[Hashable, set[int]] = {}
        for m in self._messages:
            value = extract(m)
            if value is None:
                continue
            support.setdefault(value, set()).add(m.sender_id)
        return {value: frozenset(ids) for value, ids in support.items()}


def merge_inboxes(inboxes: Iterable[Inbox], numerate: bool) -> Inbox:
    """Union several inboxes into one (used by multi-round collectors)."""
    merged: list[Message] = []
    for inbox in inboxes:
        merged.extend(inbox.messages())
    return Inbox(merged, numerate)
