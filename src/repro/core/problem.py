"""The Byzantine agreement problem: specification and verdict checking.

The paper's Section 2 defines Byzantine agreement by three properties:

1. **Validity** -- if all correct processes propose the same value ``v``,
   no correct process decides a value different from ``v``.
2. **Agreement** -- no two correct processes decide differently.
3. **Termination** -- eventually every correct process decides.

This module checks those properties over a finished simulation and
produces a structured :class:`Verdict`.  Termination is necessarily
checked against a round horizon: a simulation that ran ``R`` rounds
without some correct process deciding reports a termination *timeout*
(which is a genuine violation only when ``R`` comfortably exceeds the
algorithm's worst-case decision bound -- callers pick the horizon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence


@dataclass(frozen=True)
class Violation:
    """A single property violation with a human-readable explanation."""

    prop: str  # "validity" | "agreement" | "termination"
    detail: str

    def __str__(self) -> str:
        return f"{self.prop}: {self.detail}"


@dataclass(frozen=True)
class Verdict:
    """Outcome of checking one execution against the problem spec.

    Attributes
    ----------
    decisions:
        ``process index -> decided value`` for correct processes that
        decided (undecided processes are absent).
    decision_rounds:
        ``process index -> round`` of first decision.
    violations:
        All property violations found; empty means the execution
        satisfies Byzantine agreement (within the round horizon).
    rounds_executed:
        Number of rounds the simulation ran.
    """

    decisions: Mapping[int, Hashable]
    decision_rounds: Mapping[int, int]
    violations: tuple[Violation, ...]
    rounds_executed: int

    @property
    def ok(self) -> bool:
        """True when no property was violated."""
        return not self.violations

    @property
    def agreed_value(self) -> Hashable | None:
        """The common decided value, if all deciders agree; else ``None``."""
        values = set(self.decisions.values())
        if len(values) == 1:
            return next(iter(values))
        return None

    @property
    def last_decision_round(self) -> int | None:
        """Round by which every decided process had decided."""
        if not self.decision_rounds:
            return None
        return max(self.decision_rounds.values())

    def violated(self, prop: str) -> bool:
        """True when a violation of the named property was recorded."""
        return any(v.prop == prop for v in self.violations)

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK: decided {self.agreed_value!r} "
                f"by round {self.last_decision_round} "
                f"({self.rounds_executed} rounds executed)"
            )
        lines = [f"VIOLATIONS ({self.rounds_executed} rounds executed):"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def check_agreement_properties(
    proposals: Mapping[int, Hashable],
    decisions: Mapping[int, Hashable],
    decision_rounds: Mapping[int, int],
    correct: Sequence[int],
    rounds_executed: int,
    require_termination: bool = True,
) -> Verdict:
    """Check Validity / Agreement / Termination for one execution.

    Parameters
    ----------
    proposals:
        ``process index -> proposed value`` for *correct* processes.
    decisions, decision_rounds:
        First decisions of correct processes (indices absent if
        undecided).
    correct:
        Indices of correct processes.
    rounds_executed:
        How many rounds the simulation ran (reported in the verdict).
    require_termination:
        When ``False``, undecided processes are not reported as
        termination violations (used for deliberately truncated runs).
    """
    violations: list[Violation] = []
    correct_set = sorted(correct)

    # Termination -------------------------------------------------------
    undecided = [k for k in correct_set if k not in decisions]
    if undecided and require_termination:
        violations.append(
            Violation(
                "termination",
                f"correct processes {undecided} undecided after "
                f"{rounds_executed} rounds",
            )
        )

    # Agreement ---------------------------------------------------------
    decided_items = [(k, decisions[k]) for k in correct_set if k in decisions]
    distinct_values = sorted({repr(v) for _, v in decided_items})
    if len(distinct_values) > 1:
        by_value: dict[str, list[int]] = {}
        for k, v in decided_items:
            by_value.setdefault(repr(v), []).append(k)
        detail = "; ".join(
            f"{procs} decided {value}" for value, procs in sorted(by_value.items())
        )
        violations.append(Violation("agreement", detail))

    # Validity ----------------------------------------------------------
    proposed_values = {repr(v) for k, v in proposals.items() if k in correct_set}
    if len(proposed_values) == 1 and decided_items:
        (only_value,) = proposed_values
        bad = [(k, v) for k, v in decided_items if repr(v) != only_value]
        if bad:
            violations.append(
                Violation(
                    "validity",
                    f"all correct proposed {only_value} but "
                    + "; ".join(f"process {k} decided {v!r}" for k, v in bad),
                )
            )

    return Verdict(
        decisions={k: v for k, v in decided_items},
        decision_rounds={
            k: decision_rounds[k] for k, _ in decided_items if k in decision_rounds
        },
        violations=tuple(violations),
        rounds_executed=rounds_executed,
    )


@dataclass(frozen=True)
class AgreementProblem:
    """Problem instance: the value domain processes may propose.

    Algorithms that implement the "add all possible input values" rule
    of the partially synchronous protocols need the full domain; it is
    carried here.  The domain is ordered; several algorithms use
    ``domain[0]`` as the deterministic default/tie-break value.
    """

    domain: tuple[Hashable, ...] = (0, 1)

    def __post_init__(self) -> None:
        if len(self.domain) < 2:
            raise ValueError("agreement needs at least two possible values")
        if len(set(self.domain)) != len(self.domain):
            raise ValueError("value domain contains duplicates")

    def __deepcopy__(self, memo) -> "AgreementProblem":
        # Frozen; shared across processes, specs and ghost instances.
        return self

    @property
    def default(self) -> Hashable:
        """Deterministic tie-break value."""
        return self.domain[0]

    def validate_value(self, value: Hashable) -> Hashable:
        if value not in self.domain:
            raise ValueError(f"value {value!r} outside domain {self.domain!r}")
        return value


BINARY = AgreementProblem((0, 1))
"""The binary agreement instance used throughout the paper's examples."""
