"""Canonical, cross-version-stable keys for ordering and hashing.

Several layers need a deterministic total order (or a deterministic
serialisation) over heterogeneous values:

* :meth:`repro.sim.runner.ExecutionResult.brief` sorts the distinct
  decided values of an execution;
* the campaign engine's content-hash cache keys
  (:attr:`repro.experiments.campaign.CampaignUnit.unit_id`) must not
  drift between runs, machines, or Python versions.

``sorted(values, key=repr)`` is *not* that: ``repr`` of sets and
frozensets follows hash-table iteration order (randomised per process
for strings), and ``repr`` formatting of builtins has changed across
Python releases.  This module provides the one canonicalisation both
layers share:

* :func:`canonical_key` -- a type-tagged, recursively canonical string;
  container contents are themselves canonicalised and unordered
  containers are sorted by their elements' canonical keys, so equal
  values always map to equal keys and the induced order is stable.
* :func:`canonical_json` -- compact JSON with sorted object keys and a
  :func:`canonical_key` fallback for non-JSON values; byte-stable input
  for content hashes.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Mapping

__all__ = [
    "canonical_key",
    "canonical_json",
    "canonical_state_key",
    "stable_seed",
]


def canonical_key(value: Any) -> str:
    """A deterministic, type-tagged string key for ``value``.

    Equal values produce equal keys; distinct primitive types are kept
    apart by an explicit tag (so ``1``, ``True`` and ``"1"`` never
    collide the way ad-hoc ``repr`` schemes can).  Sets, frozensets and
    mappings are serialised in the order of their elements' canonical
    keys -- never in hash-table iteration order.

    Free-form text (string contents, fallback reprs) is JSON-quoted, so
    a child key can never forge the structural separators (``,``, ``=``,
    brackets) and structurally distinct values cannot collide.

    Args:
        value: Any value; containers are handled recursively, unknown
            objects fall back to ``obj:type-name:quoted-repr``.

    Returns:
        The canonical key string.
    """
    if value is None:
        return "null"
    if isinstance(value, bool):  # before int: bool is an int subclass
        return f"bool:{value}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, float):
        return f"float:{value!r}"
    if isinstance(value, str):
        return f"str:{json.dumps(value)}"
    if isinstance(value, bytes):
        return f"bytes:{value.hex()}"
    if isinstance(value, (tuple, list)):
        return "seq:[" + ",".join(canonical_key(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "set:{" + ",".join(sorted(canonical_key(v) for v in value)) + "}"
    if isinstance(value, Mapping):
        items = sorted(
            (canonical_key(k), canonical_key(v)) for k, v in value.items()
        )
        return "map:{" + ",".join(f"{k}={v}" for k, v in items) + "}"
    return f"obj:{type(value).__name__}:{json.dumps(repr(value))}"


def canonical_state_key(value: Any, _seen: frozenset[int] = frozenset()) -> str:
    """A :func:`canonical_key` that recurses into plain objects.

    :func:`canonical_key` degrades unknown objects to ``repr``, which
    embeds memory addresses for anything without a custom ``__repr__``
    -- useless as an equivalence key across deep copies.  The strategy
    explorer needs exactly that equivalence: two process objects that
    went through different Byzantine histories but ended in the *same
    state* must produce the *same* digest, or its transposition table
    never collapses anything.

    This variant therefore serialises objects structurally: instance
    attributes from ``__dict__`` and ``__slots__`` (including inherited
    slots), tagged with the type name and sorted by attribute name.
    Mapping/set contents are canonically sorted exactly as in
    :func:`canonical_key`.  Cycles degrade to a ``cycle`` marker rather
    than recursing forever.

    Args:
        value: Any value; objects are decomposed recursively.
        _seen: Internal cycle guard (ids on the current recursion path).

    Returns:
        The canonical state-key string.
    """
    if value is None:
        return "null"
    if isinstance(value, bool):
        return f"bool:{value}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, float):
        return f"float:{value!r}"
    if isinstance(value, str):
        return f"str:{json.dumps(value)}"
    if isinstance(value, bytes):
        return f"bytes:{value.hex()}"
    if id(value) in _seen:
        return "cycle"
    seen = _seen | {id(value)}
    if isinstance(value, (tuple, list)):
        return "seq:[" + ",".join(canonical_state_key(v, seen) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return (
            "set:{"
            + ",".join(sorted(canonical_state_key(v, seen) for v in value))
            + "}"
        )
    if isinstance(value, Mapping):
        items = sorted(
            (canonical_state_key(k, seen), canonical_state_key(v, seen))
            for k, v in value.items()
        )
        return "map:{" + ",".join(f"{k}={v}" for k, v in items) + "}"
    attrs: dict[str, Any] = {}
    for klass in reversed(type(value).__mro__):
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(value, slot):
                attrs[slot] = getattr(value, slot)
    attrs.update(getattr(value, "__dict__", {}))
    # Dunder entries (e.g. an enum member's __objclass__) point back at
    # class-level machinery whose digest would be address-dependent
    # noise; instance state never lives under dunder names.
    attrs = {k: v for k, v in attrs.items() if not k.startswith("__")}
    if attrs:
        body = ",".join(
            f"{json.dumps(name)}={canonical_state_key(attr, seen)}"
            for name, attr in sorted(attrs.items())
        )
        return f"obj:{type(value).__name__}:{{{body}}}"
    return f"obj:{type(value).__name__}:{json.dumps(repr(value))}"


def stable_seed(value: Any) -> int:
    """A cross-run-stable 32-bit RNG seed derived from ``value``.

    The seeded simulation layers (per-link drop decisions in
    :class:`repro.sim.partial.RandomDrops`, per-message delays in
    :mod:`repro.sim.delay`) need one independent, deterministic RNG per
    ``(seed, round/tick, sender, recipient)`` key.  Python's builtin
    ``hash`` is *not* that: string hashing is salted per interpreter run
    (``PYTHONHASHSEED``), so a key containing any string -- or any value
    whose hash delegates to one -- yields different "deterministic"
    behaviour between runs.  This helper digests a deterministic
    encoding of the value with CRC-32 instead -- a direct tag+length
    encoding for flat int/str tuples (the hot-path shape), the
    :func:`canonical_key` for everything else -- which is bit-stable
    across runs, machines and Python versions.

    Args:
        value: Any :func:`canonical_key`-able value (tuples of the key
            components, typically).

    Returns:
        An unsigned 32-bit seed.
    """
    if type(value) is tuple and all(type(v) in (int, str) for v in value):
        # Hot path: the seeded simulation layers call this once per
        # network edge per round, always with a flat tuple of small
        # ints (plus the occasional phase-marker string).  A direct
        # unambiguous encoding (type tag + length-prefixed text) skips
        # the general JSON canonicalisation, which is ~30x slower.
        key = "|".join(
            f"i:{v}" if type(v) is int else f"s{len(v)}:{v}" for v in value
        )
    else:
        key = canonical_key(value)
    return zlib.crc32(key.encode("utf-8"))


def canonical_json(value: Any) -> str:
    """Compact, byte-stable JSON serialisation of ``value``.

    Object keys are sorted and separators carry no whitespace, so the
    output is suitable as content-hash input.  Values JSON cannot
    express are replaced by their :func:`canonical_key`.

    Args:
        value: A JSON-compatible value (other objects degrade to their
            canonical key string).

    Returns:
        The JSON document as a string.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=canonical_key
    )
