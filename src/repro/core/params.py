"""System parameters: the model space of the paper.

The paper characterises Byzantine agreement over a 2x2x2 model space:

* synchrony: synchronous vs partially synchronous (DLS basic model);
* numeracy: numerate (inboxes are multisets -- copies of identical
  messages can be counted) vs innumerate (inboxes are sets);
* Byzantine restriction: unrestricted (a Byzantine process may send any
  number of messages to one recipient per round) vs restricted (at most
  one message per recipient per round).

:class:`SystemParams` bundles the numeric triple ``(n, ell, t)`` with
the model flags, validates the structural requirements shared by every
result in the paper (``n > 3t``, ``n >= ell >= 1``), and exposes the
derived quantities the algorithms and proofs use (quorum sizes, number
of guaranteed sole-owner identifiers, ...).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, replace
from typing import Iterator

from repro.core.errors import ConfigurationError


class Synchrony(enum.Enum):
    """Timing model of the network."""

    SYNCHRONOUS = "synchronous"
    PARTIALLY_SYNCHRONOUS = "partially_synchronous"

    @property
    def short(self) -> str:
        return "sync" if self is Synchrony.SYNCHRONOUS else "psync"


@dataclass(frozen=True)
class SystemParams:
    """Parameters of one system in the paper's model space.

    Attributes
    ----------
    n:
        Total number of processes (``n >= 2``).
    ell:
        Number of distinct authenticated identifiers actually assigned
        (``1 <= ell <= n``).  Identifiers are ``1..ell``; every
        identifier is held by at least one process.
    t:
        Maximum number of Byzantine processes tolerated (``0 <= t``).
        The paper only considers ``n > 3t``; we allow constructing
        parameter objects outside that region (the impossibility
        demonstrations need them) but :meth:`validate` reports it.
    synchrony:
        Timing model.
    numerate:
        Whether correct processes receive round inboxes as multisets
        (``True``) or sets (``False``).
    restricted:
        Whether Byzantine processes are restricted to at most one
        message per recipient per round.
    """

    n: int
    ell: int
    t: int
    synchrony: Synchrony = Synchrony.SYNCHRONOUS
    numerate: bool = False
    restricted: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if not 1 <= self.ell <= self.n:
            raise ConfigurationError(
                f"need 1 <= ell <= n, got ell={self.ell}, n={self.n}"
            )
        if self.t < 0:
            raise ConfigurationError(f"t must be >= 0, got {self.t}")

    def __deepcopy__(self, memo) -> "SystemParams":
        # Frozen and shared by every process of an execution; copying it
        # per process dominates engine checkpoint costs for no benefit.
        return self

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    @property
    def classical(self) -> bool:
        """True when every process has a unique identifier (``ell == n``)."""
        return self.ell == self.n

    @property
    def anonymous(self) -> bool:
        """True when all processes share one identifier (``ell == 1``)."""
        return self.ell == 1

    @property
    def meets_psl_bound(self) -> bool:
        """Classical Pease--Shostak--Lamport requirement ``n > 3t``."""
        return self.n > 3 * self.t

    @property
    def identifiers(self) -> range:
        """The identifier space ``1..ell`` (inclusive), as the paper numbers it."""
        return range(1, self.ell + 1)

    # ------------------------------------------------------------------
    # Derived quantities used by the algorithms
    # ------------------------------------------------------------------
    @property
    def id_quorum(self) -> int:
        """Identifier-quorum size ``ell - t`` used by the Figure 5 algorithm."""
        return self.ell - self.t

    @property
    def process_quorum(self) -> int:
        """Process-count quorum ``n - t`` used by the Figure 7 algorithm."""
        return self.n - self.t

    @property
    def min_sole_owner_ids(self) -> int:
        """Lower bound on identifiers owned by exactly one process.

        At most ``n - ell`` identifiers can be shared, so at least
        ``ell - (n - ell) = 2*ell - n`` identifiers are *sole-owner*.
        The Figure 5 termination argument relies on there being at least
        ``2t + 1`` sole-owner correct processes when ``2*ell > n + 3t``.
        """
        return max(0, 2 * self.ell - self.n)

    def with_model(
        self,
        synchrony: Synchrony | None = None,
        numerate: bool | None = None,
        restricted: bool | None = None,
    ) -> "SystemParams":
        """Return a copy with some model flags replaced."""
        return replace(
            self,
            synchrony=self.synchrony if synchrony is None else synchrony,
            numerate=self.numerate if numerate is None else numerate,
            restricted=self.restricted if restricted is None else restricted,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        num = "numerate" if self.numerate else "innumerate"
        res = "restricted" if self.restricted else "unrestricted"
        return (
            f"n={self.n} ell={self.ell} t={self.t} "
            f"[{self.synchrony.short}, {num}, {res} Byzantine]"
        )


def model_space() -> Iterator[tuple[Synchrony, bool, bool]]:
    """Enumerate the paper's 2x2x2 model space.

    Yields ``(synchrony, numerate, restricted)`` triples in a fixed
    deterministic order (synchronous first, innumerate first,
    unrestricted first) matching the layout of Table 1.
    """
    for synchrony, numerate, restricted in itertools.product(
        (Synchrony.SYNCHRONOUS, Synchrony.PARTIALLY_SYNCHRONOUS),
        (False, True),
        (False, True),
    ):
        yield synchrony, numerate, restricted
