"""Exception hierarchy for the homonyms reproduction.

All exceptions raised by this package derive from :class:`ReproError`
so that callers can catch package failures with a single except clause
while letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A system configuration violates a structural requirement.

    Examples: ``n < ell``, an identifier with no process assigned to it,
    a Byzantine set larger than ``t``.
    """


class BoundViolation(ConfigurationError):
    """An algorithm was instantiated outside its solvability bound.

    Algorithms raise this *eagerly* at construction time when the
    supplied ``(n, ell, t)`` triple falls outside the region in which the
    paper proves them correct (e.g. constructing the Figure 5 algorithm
    with ``2*ell <= n + 3*t``).  Lower-bound demonstrations deliberately
    bypass the check via ``unchecked=True``.
    """


class AdversaryViolation(ReproError):
    """The adversary attempted something the model forbids.

    Raised by the network engine when a Byzantine strategy tries to
    forge an identifier it does not own, or sends more than one message
    per recipient per round under the *restricted* Byzantine model.
    """


class ProtocolViolation(ReproError):
    """A correct-process implementation broke an internal invariant.

    This signals a bug in an algorithm implementation (e.g. a correct
    process attempting to send two different payloads in one round), not
    adversarial behaviour.
    """


class SimulationError(ReproError):
    """The simulation engine itself hit an inconsistent state."""


class ReplayError(ReproError):
    """A replay adversary was asked for a round missing from its trace."""


class ProvenanceError(ReproError):
    """An atlas cell's evidence set is structurally unusable.

    Raised by the evidence fusion when a cell lacks the closed-form
    claim, or carries no non-symbolic evidence at all: a verdict fused
    from the symbolic predicate alone would just restate Table 1, and
    the atlas exists to corroborate it.
    """


class AtlasLogCorrupt(ReproError):
    """A streaming JSONL log is corrupt in the middle of the file.

    A torn or garbled *final* line is expected wear (a writer died
    mid-append) and readers tolerate it, but a bad line with well-formed
    rows *after* it cannot come from a torn append: it means the file
    was edited, truncated-and-rewritten, or hit media corruption.
    Silently stopping there would quietly drop the valid tail from
    renders and soak aggregation, so readers raise this instead.
    """


class AtlasConflict(ReproError):
    """Machine-checked evidence contradicts the closed-form predicate.

    The hard-error outcome of atlas fusion: a replayed violation
    witness (or a failing campaign battery) inside the region Table 1
    declares solvable, or the symmetric disagreement.  This is never a
    tolerable data point -- it means either the implementation or the
    reproduction of the paper's characterisation is wrong.

    When the conflict is detected while merging shard logs, the
    exception's ``rows`` attribute carries the full provenance rows
    involved (see :func:`repro.atlas.merge.merge_shards`).
    """

    def __init__(self, message: str, rows: tuple = ()):  # noqa: D107
        super().__init__(message)
        #: Provenance rows attached at merge time (empty elsewhere).
        self.rows = rows


class AtlasMergeError(ReproError):
    """A set of shard logs cannot be fused into one canonical atlas.

    Raised by :func:`repro.atlas.merge.merge_shards` when the shard
    rows do not partition the lattice: a missing global index (a shard
    log is incomplete -- resume that shard to completion first), a row
    without a usable ``index``, or a recorded verdict that re-fusion of
    the row's own evidence no longer reproduces (a tampered or
    schema-skewed log).  Divergent duplicate rows are a conflict, not a
    merge error -- they raise :class:`AtlasConflict` with both rows
    attached.
    """
