"""Core model: parameters, identities, messages, and the problem spec."""

from repro.core.errors import (
    AdversaryViolation,
    BoundViolation,
    ConfigurationError,
    ProtocolViolation,
    ReplayError,
    ReproError,
    SimulationError,
)
from repro.core.identity import (
    IdentityAssignment,
    all_assignments,
    assignment_from_sizes,
    balanced_assignment,
    random_assignment,
    stacked_assignment,
)
from repro.core.messages import Inbox, Message, merge_inboxes
from repro.core.params import Synchrony, SystemParams, model_space
from repro.core.problem import (
    BINARY,
    AgreementProblem,
    Verdict,
    Violation,
    check_agreement_properties,
)

__all__ = [
    "AdversaryViolation",
    "AgreementProblem",
    "BINARY",
    "BoundViolation",
    "ConfigurationError",
    "IdentityAssignment",
    "Inbox",
    "Message",
    "ProtocolViolation",
    "ReplayError",
    "ReproError",
    "SimulationError",
    "Synchrony",
    "SystemParams",
    "Verdict",
    "Violation",
    "all_assignments",
    "assignment_from_sizes",
    "balanced_assignment",
    "check_agreement_properties",
    "merge_inboxes",
    "model_space",
    "random_assignment",
    "stacked_assignment",
]
