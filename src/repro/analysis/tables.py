"""Regeneration of the paper's Table 1 (and its boundary maps).

Table 1 lists the necessary-and-sufficient identifier conditions for
the four model combinations.  :func:`table1_text` renders the same
table from the predicates in :mod:`repro.analysis.bounds`;
:func:`boundary_map` renders, for a fixed ``(n, t)``, which ``ell`` are
solvable per model -- the numeric view the benchmarks validate run by
run.
"""

from __future__ import annotations

from repro.analysis.bounds import solvable
from repro.core.params import Synchrony, SystemParams


def condition_strings() -> dict[tuple[str, str], str]:
    """The symbolic conditions exactly as Table 1 states them."""
    return {
        ("synchronous", "innumerate"): "ell > 3t",
        ("synchronous", "numerate"): "ell > 3t (ell > t for restricted Byzantine)",
        ("partially_synchronous", "innumerate"): "2*ell > n + 3t",
        ("partially_synchronous", "numerate"):
            "2*ell > n + 3t (ell > t for restricted Byzantine)",
    }


def table1_text() -> str:
    """Render Table 1 as fixed-width text."""
    conditions = condition_strings()
    col1 = "Synchronous"
    col2 = "Partially synchronous"
    rows = [
        ("Innumerate processes",
         conditions[("synchronous", "innumerate")],
         conditions[("partially_synchronous", "innumerate")]),
        ("Numerate processes",
         conditions[("synchronous", "numerate")],
         conditions[("partially_synchronous", "numerate")]),
    ]
    w0 = max(len(r[0]) for r in rows) + 2
    w1 = max(len(col1), max(len(r[1]) for r in rows)) + 2
    w2 = max(len(col2), max(len(r[2]) for r in rows)) + 2
    lines = [
        " " * w0 + col1.ljust(w1) + col2.ljust(w2),
        "-" * (w0 + w1 + w2),
    ]
    for name, sync_cond, psync_cond in rows:
        lines.append(name.ljust(w0) + sync_cond.ljust(w1) + psync_cond.ljust(w2))
    lines.append("-" * (w0 + w1 + w2))
    lines.append("In all cases, n must be greater than 3t.")
    return "\n".join(lines)


def boundary_map(n: int, t: int) -> str:
    """Per-``ell`` solvability grid for fixed ``(n, t)``, all four models.

    ``S`` marks solvable, ``.`` unsolvable; columns are ``ell = 1..n``.
    """
    models = [
        ("sync  unrestricted        ", Synchrony.SYNCHRONOUS, False, False),
        ("sync  restricted+numerate ", Synchrony.SYNCHRONOUS, True, True),
        ("psync unrestricted        ", Synchrony.PARTIALLY_SYNCHRONOUS, False, False),
        ("psync restricted+numerate ", Synchrony.PARTIALLY_SYNCHRONOUS, True, True),
    ]
    header = "ell:              " + " ".join(f"{ell:2d}" for ell in range(1, n + 1))
    lines = [f"n={n}, t={t}", header]
    for label, synchrony, numerate, restricted in models:
        marks = []
        for ell in range(1, n + 1):
            params = SystemParams(
                n=n, ell=ell, t=t,
                synchrony=synchrony, numerate=numerate, restricted=restricted,
            )
            marks.append(" S" if solvable(params) else " .")
        lines.append(label + "".join(marks))
    return "\n".join(lines)
