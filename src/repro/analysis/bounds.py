"""Closed-form solvability predicates: the content of Table 1.

The paper's complete characterisation of Byzantine agreement with
homonyms, as predicates over ``(n, ell, t)`` and the model flags.
Everywhere ``n > 3t`` is required (Pease--Shostak--Lamport); on top of
that:

=====================  ============================  =======================
model                  unrestricted Byzantine        restricted Byzantine
=====================  ============================  =======================
synchronous            ``ell > 3t``                  numerate: ``ell > t``
                                                     innumerate: ``ell > 3t``
partially synchronous  ``2*ell > n + 3t``            numerate: ``ell > t``
                                                     innumerate: ``2*ell > n + 3t``
=====================  ============================  =======================

The predicates drive the Table 1 benchmark (each cell's prediction is
validated empirically) and double as executable documentation of the
paper's headline curiosities, which have their own helpers here:

* :func:`partial_synchrony_gap` -- configurations solvable synchronously
  but not partially synchronously;
* :func:`more_correct_processes_hurt` -- adding correct processes
  (increasing ``n`` at fixed ``ell, t``) can cross the partially
  synchronous bound;
* :func:`restriction_gain` -- how far the restricted+numerate model
  lowers the identifier requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.params import Synchrony, SystemParams


def psl_bound(n: int, t: int) -> bool:
    """The universal requirement ``n > 3t`` (holds for every cell)."""
    return n > 3 * t


def sync_bound(ell: int, t: int) -> bool:
    """Theorem 3: synchronous solvability iff ``ell > 3t``."""
    return ell > 3 * t


def psync_bound(n: int, ell: int, t: int) -> bool:
    """Theorem 13: partially synchronous solvability iff ``2*ell > n + 3t``."""
    return 2 * ell > n + 3 * t


def restricted_numerate_bound(ell: int, t: int) -> bool:
    """Theorems 14/15: restricted Byzantine + numerate iff ``ell > t``."""
    return ell > t


def governing_condition(params: SystemParams) -> str:
    """The Table 1 condition governing a cell, as the paper states it.

    Args:
        params: The cell's parameters (select the model family).

    Returns:
        The symbolic condition string, including the universal
        ``n > 3t`` requirement.
    """
    if params.restricted and params.numerate:
        return "n > 3t and ell > t"
    if params.synchrony is Synchrony.SYNCHRONOUS:
        return "n > 3t and ell > 3t"
    return "n > 3t and 2*ell > n + 3t"


def solvable(params: SystemParams) -> bool:
    """The full Table 1 predicate for one parameterised model."""
    n, ell, t = params.n, params.ell, params.t
    if t == 0:
        return True  # no faults: trivially solvable in every model here
    if not psl_bound(n, t):
        return False
    if params.restricted and params.numerate:
        # Theorems 14/15: the same condition in both synchrony models.
        return restricted_numerate_bound(ell, t)
    if params.synchrony is Synchrony.SYNCHRONOUS:
        # Theorem 3 (unrestricted) and Theorem 19 (restricted innumerate).
        return sync_bound(ell, t)
    # Theorem 13 (unrestricted) and Theorem 20 (restricted innumerate).
    return psync_bound(n, ell, t)


def min_identifiers(
    n: int, t: int, synchrony: Synchrony, numerate: bool, restricted: bool
) -> int | None:
    """Smallest ``ell`` (``<= n``) making the configuration solvable.

    Returns ``None`` when no ``ell <= n`` works (i.e. ``n <= 3t``, where
    even unique identifiers do not help).
    """
    for ell in range(1, n + 1):
        params = SystemParams(
            n=n, ell=ell, t=t,
            synchrony=synchrony, numerate=numerate, restricted=restricted,
        )
        if solvable(params):
            return ell
    return None


@dataclass(frozen=True)
class GapExample:
    """A configuration illustrating one of the paper's surprises."""

    n: int
    ell: int
    t: int
    description: str


def partial_synchrony_gap(max_n: int = 20) -> Iterator[GapExample]:
    """Configurations solvable synchronously but not partially synchronously.

    The paper highlights that, unlike the classical ``ell = n`` world,
    relaxing synchrony changes the solvability condition; every yielded
    example satisfies ``ell > 3t`` but ``2*ell <= n + 3t``.
    """
    for t in range(1, max_n // 3 + 1):
        for n in range(3 * t + 1, max_n + 1):
            for ell in range(1, n + 1):
                if sync_bound(ell, t) and not psync_bound(n, ell, t):
                    yield GapExample(
                        n=n, ell=ell, t=t,
                        description=(
                            f"sync solvable (ell={ell} > 3t={3 * t}) but psync "
                            f"unsolvable (2*ell={2 * ell} <= n+3t={n + 3 * t})"
                        ),
                    )


def more_correct_processes_hurt(ell: int, t: int) -> GapExample | None:
    """The paper's ``t=1, ell=4`` curiosity, generalised.

    At fixed ``(ell, t)`` with ``ell > 3t``, partially synchronous
    agreement is solvable for ``n = ell`` but becomes unsolvable once
    ``n >= 2*ell - 3t`` -- adding *correct* processes breaks it.  Returns
    the smallest such ``n`` as an example, or ``None`` if the premise
    fails.
    """
    if not sync_bound(ell, t):
        return None
    n_bad = 2 * ell - 3 * t
    if n_bad <= ell:  # cannot happen when ell > 3t
        return None
    return GapExample(
        n=n_bad, ell=ell, t=t,
        description=(
            f"with ell={ell}, t={t}: solvable for ell <= n <= {n_bad - 1}, "
            f"unsolvable from n={n_bad} although the extra processes are correct"
        ),
    )


@dataclass(frozen=True)
class TightnessPair:
    """One tightness check: a configuration just past a bound and the
    minimal one just inside it.

    The bounded strategy explorer (:mod:`repro.explore`) consumes these:
    it must find a violating adversary strategy at ``outside`` and
    certify the absence of one (within its bounded family) at
    ``inside``.
    """

    family: str
    outside: SystemParams
    inside: SystemParams
    theorem: str


def tightness_pairs(t: int = 1) -> list[TightnessPair]:
    """The Table 1 boundaries as explorable outside/inside pairs.

    Synchronous (Theorem 3, ``ell > 3t``): ``n = ell = 3t`` sits just
    past the bound, ``n = ell = 3t + 1`` just inside.  Partially
    synchronous (Theorem 13, ``2*ell > n + 3t``): at ``n = ell = 3t``
    the boundary case ``ell = (n + 3t) / 2`` is realised with the
    fewest processes (larger ``n`` needs ``ell <= n`` slack), and
    ``n = ell = 3t + 1`` is again the minimal solvable neighbour.

    Args:
        t: The fault budget (``t = 1`` is the intended small scope).

    Returns:
        One pair per synchrony family.
    """
    n_out = 3 * t
    n_in = 3 * t + 1
    psync = Synchrony.PARTIALLY_SYNCHRONOUS
    return [
        TightnessPair(
            family="synchronous",
            outside=SystemParams(n=n_out, ell=n_out, t=t),
            inside=SystemParams(n=n_in, ell=n_in, t=t),
            theorem="Theorem 3: ell > 3t",
        ),
        TightnessPair(
            family="partially synchronous",
            outside=SystemParams(n=n_out, ell=n_out, t=t, synchrony=psync),
            inside=SystemParams(n=n_in, ell=n_in, t=t, synchrony=psync),
            theorem="Theorem 13: 2*ell > n + 3t",
        ),
    ]


def restriction_gain(n: int, t: int) -> tuple[int | None, int | None]:
    """Identifier requirements (psync, numerate): unrestricted vs restricted.

    Returns ``(min ell unrestricted, min ell restricted)`` -- the paper's
    headline drop from ``> (n + 3t)/2`` to ``> t``.
    """
    unrestricted = min_identifiers(
        n, t, Synchrony.PARTIALLY_SYNCHRONOUS, numerate=True, restricted=False
    )
    restricted = min_identifiers(
        n, t, Synchrony.PARTIALLY_SYNCHRONOUS, numerate=True, restricted=True
    )
    return unrestricted, restricted
