"""Quorum-intersection arithmetic: Lemmas 7, 30 and 31 made executable.

The safety of both partially synchronous protocols reduces to counting
arguments about overlapping quorums.  This module states them as pure
functions and provides exhaustive small-case verifiers used by the
property-based test-suite.

* **Lemma 7** (Figure 5): with ``2*ell > n + 3t``, any two sets of
  ``ell - t`` *identifiers* intersect in an identifier held by exactly
  one process, which is correct.
* **Lemma 30** (Figure 7): ``n - t`` witnesses for a broadcast imply at
  least ``n - t - f`` correct broadcasters (``f`` = actual Byzantine
  count), via the unforgeability bound ``alpha_i <= correct_i + f_i``.
* **Lemma 31** (Figure 7): two ``n - t``-witnessed broadcasts share a
  correct broadcaster (``(n-t-f) + (n-t-f) - (n-f) = n - 2t - f >=
  n - 3t > 0``).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.core.identity import IdentityAssignment


def lemma7_holds(n: int, ell: int, t: int) -> bool:
    """Arithmetic form of Lemma 7.

    Any two identifier sets of size ``ell - t`` intersect in at least
    ``2*(ell - t) - ell = ell - 2t`` identifiers; at most ``n - ell``
    identifiers are shared by several processes and at most ``t`` belong
    to Byzantine processes, so a sole-owner correct identifier exists in
    the intersection whenever ``ell - 2t > (n - ell) + t``, i.e.
    ``2*ell > n + 3t``.
    """
    return (ell - 2 * t) > (n - ell) + t


def quorum_intersection_size(ell: int, quorum: int) -> int:
    """Minimum intersection of two quorums out of ``ell`` identifiers."""
    return max(0, 2 * quorum - ell)


def sole_owner_correct_in_intersection(
    assignment: IdentityAssignment,
    byzantine: Sequence[int],
    quorum_a: Iterable[int],
    quorum_b: Iterable[int],
) -> tuple[int, ...]:
    """Identifiers in ``A ∩ B`` held by exactly one process, none Byzantine.

    This is the *conclusion* of Lemma 7 for two concrete quorums; the
    test-suite checks it is non-empty for every pair of ``ell - t``-sized
    quorums whenever ``2*ell > n + 3t``.
    """
    byz_ids = {assignment.identifier_of(b) for b in byzantine}
    result = []
    for ident in sorted(set(quorum_a) & set(quorum_b)):
        if len(assignment.group(ident)) == 1 and ident not in byz_ids:
            result.append(ident)
    return tuple(sorted(result))


def lemma7_exhaustive_check(
    assignment: IdentityAssignment, t: int, byzantine: Sequence[int]
) -> bool:
    """Check Lemma 7's conclusion over *all* quorum pairs of one system.

    Exponential in ``ell``; intended for ``ell <= 8``.
    """
    ell = assignment.ell
    quorum = ell - t
    identifiers = list(range(1, ell + 1))
    for qa in itertools.combinations(identifiers, quorum):
        for qb in itertools.combinations(identifiers, quorum):
            if not sole_owner_correct_in_intersection(
                assignment, byzantine, qa, qb
            ):
                return False
    return True


def lemma30_min_correct_broadcasters(n: int, t: int, f: int, witnesses: int) -> int:
    """Lemma 30: lower bound on correct broadcasters given a witness total."""
    return max(0, witnesses - f)


def lemma31_shared_broadcaster_guaranteed(n: int, t: int, f: int) -> bool:
    """Lemma 31: do two ``n - t``-witnessed broadcasts share a correct sender?

    ``|A ∩ B| >= (n-t-f) + (n-t-f) - (n-f) = n - 2t - f``; with ``f <= t``
    and ``n > 3t`` this is positive.
    """
    return (n - 2 * t - f) > 0


def witness_bounds(
    correct_broadcasters: int, f_i_by_ident: dict[int, int]
) -> tuple[int, int]:
    """Range of witness totals the Figure 6 primitive can legally report.

    Correctness gives the lower end (every correct broadcast counted);
    unforgeability caps each identifier's multiplicity at
    ``correct_i + f_i``, so the total is at most
    ``correct + sum(f_i)``.
    """
    total_f = sum(f_i_by_ident.values())
    return correct_broadcasters, correct_broadcasters + total_f
