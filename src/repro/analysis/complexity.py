"""Closed-form cost models of the implemented algorithms.

The paper proves computability results and explicitly leaves complexity
open ("complexity is yet to be explored").  The reproduction cannot
leave it open: users need to know what they are paying.  This module
states the cost models our implementations actually satisfy -- every
formula here is pinned by a test or benchmark comparing it against
measured traces, so the models are *verified documentation*.

Round counts use engine rounds (0-indexed internally; the formulas
count rounds, i.e. ``last index + 1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import SystemParams


# ----------------------------------------------------------------------
# Classic baselines (Figure 2)
# ----------------------------------------------------------------------
def eig_rounds(t: int) -> int:
    """EIG decides after exactly ``t + 1`` rounds."""
    return t + 1


def eig_tree_nodes(ell: int, t: int) -> int:
    """Size of a full EIG information tree: ``sum_{k=0..t+1} ell!/(ell-k)!``.

    This is the per-process state bound and the driver of EIG's
    exponential message sizes.
    """
    total = 0
    for k in range(t + 2):
        total += math.perm(ell, k)
    return total


def eig_level_nodes(ell: int, level: int) -> int:
    """Nodes at one tree level: ``ell! / (ell - level)!``."""
    return math.perm(ell, level)


def phase_king_rounds(t: int) -> int:
    """Phase-King decides after ``2*(t + 1)`` rounds."""
    return 2 * (t + 1)


# ----------------------------------------------------------------------
# The transformation (Figure 3)
# ----------------------------------------------------------------------
def transform_decision_round(base_rounds: int) -> int:
    """Engine round (0-indexed) at which every T(A) process decides.

    Three rounds per simulated round of ``A``; the decision lands in the
    *deciding* round (offset 1) of the phase after ``A``'s last
    transition: ``3 * base_rounds + 1``.
    """
    return 3 * base_rounds + 1


# ----------------------------------------------------------------------
# Partially synchronous protocols (Figures 5 and 7)
# ----------------------------------------------------------------------
ROUNDS_PER_PHASE = 8  # four superrounds of two rounds


def dls_first_decision_bound(params: SystemParams, gst_round: int) -> int:
    """Upper bound on the first decision round of Figure 5.

    After the first full phase past ``gst_round``, every identifier
    leads within ``ell`` phases, and the first *sole-owner correct*
    leader's phase decides; there are at least ``2t + 1`` sole-owner
    correct processes, so such a leader occurs within the first
    ``n - ell + t + 1`` identifiers of the rotation in the worst case
    (that many identifiers can be homonym-or-Byzantine).  Conservative
    bound: one full rotation.
    """
    first_stable_phase = (gst_round + ROUNDS_PER_PHASE - 1) // ROUNDS_PER_PHASE + 1
    return (first_stable_phase + params.ell + 1) * ROUNDS_PER_PHASE


def dls_all_decided_bound(params: SystemParams, gst_round: int) -> int:
    """Upper bound on the last decision round of Figure 5.

    ``t + 1`` sole-owner leaders must decide before the decide relay
    finishes everyone; they all lead within one rotation past
    stabilisation, plus one phase for the relay itself.
    """
    return dls_first_decision_bound(params, gst_round) + ROUNDS_PER_PHASE


def restricted_all_decided_bound(params: SystemParams, gst_round: int) -> int:
    """Upper bound on the last decision round of Figure 7.

    The first phase after stabilisation led by a fully correct
    identifier decides for *everybody* at once (no relay needed); such
    an identifier exists (``ell > t``) and leads within ``ell`` phases.
    """
    first_stable_phase = (gst_round + ROUNDS_PER_PHASE - 1) // ROUNDS_PER_PHASE + 1
    return (first_stable_phase + params.ell + 1) * ROUNDS_PER_PHASE


def broadcasts_per_round(params: SystemParams) -> int:
    """Correct broadcasts per engine round (one each: the model's shape)."""
    return params.n - params.t  # worst case all t Byzantine


@dataclass(frozen=True)
class CostEstimate:
    """A round/message budget for one configuration."""

    rounds: int
    correct_messages: int  # broadcasts x fanout

    @staticmethod
    def for_dls(params: SystemParams, gst_round: int) -> "CostEstimate":
        rounds = dls_all_decided_bound(params, gst_round)
        return CostEstimate(
            rounds=rounds,
            correct_messages=rounds * broadcasts_per_round(params) * params.n,
        )

    @staticmethod
    def for_restricted(params: SystemParams, gst_round: int) -> "CostEstimate":
        rounds = restricted_all_decided_bound(params, gst_round)
        return CostEstimate(
            rounds=rounds,
            correct_messages=rounds * broadcasts_per_round(params) * params.n,
        )
