"""Benchmark F2: the classic unique-identifier baselines (Figure 2).

The paper's Figure 2 is the functional form of "any synchronous BA
algorithm with unique identifiers".  This bench characterises our two
instantiations -- EIG (n > 3t, t+1 rounds, exponential payloads) and
Phase-King (n > 4t, 2(t+1) rounds, constant payloads) -- reporting
decision rounds and message bytes across (ell, t), under a silent and a
chaotic adversary.  These are the baselines the Figure 3 transformation
is benchmarked against.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.adversaries.generic import RandomByzantineAdversary
from repro.classic.eig import EIGSpec
from repro.classic.phase_king import PhaseKingSpec
from repro.classic.runner import classic_factory
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams
from repro.core.problem import BINARY
from repro.sim.runner import run_agreement


def run_classic(spec, adversary=None):
    ell, t = spec.ell, spec.t
    params = SystemParams(n=ell, ell=ell, t=t)
    byz = tuple(range(ell - t, ell))
    return run_agreement(
        params=params,
        assignment=balanced_assignment(ell, ell),
        factory=classic_factory(spec),
        proposals={k: k % 2 for k in range(ell - t)},
        byzantine=byz,
        adversary=adversary,
        max_rounds=spec.max_rounds + 2,
    )


EIG_CASES = [(4, 1), (5, 1), (7, 2), (10, 3)]
PK_CASES = [(5, 1), (9, 2), (13, 3)]


@pytest.mark.parametrize("ell,t", EIG_CASES,
                         ids=[f"eig-l{l}-t{t}" for l, t in EIG_CASES])
def test_fig2_eig_baseline(benchmark, ell, t):
    spec = EIGSpec(ell, t, BINARY)

    def body():
        return run_classic(spec, RandomByzantineAdversary(seed=1))

    result = run_once(benchmark, body)
    benchmark.extra_info["rounds"] = result.verdict.last_decision_round
    benchmark.extra_info["bytes"] = result.metrics.payload_bytes
    assert result.verdict.ok
    assert result.verdict.last_decision_round == t  # t+1 paper rounds, 0-indexed


@pytest.mark.parametrize("ell,t", PK_CASES,
                         ids=[f"pk-l{l}-t{t}" for l, t in PK_CASES])
def test_fig2_phase_king_baseline(benchmark, ell, t):
    spec = PhaseKingSpec(ell, t, BINARY)

    def body():
        return run_classic(spec, RandomByzantineAdversary(seed=1))

    result = run_once(benchmark, body)
    benchmark.extra_info["rounds"] = result.verdict.last_decision_round
    benchmark.extra_info["bytes"] = result.metrics.payload_bytes
    assert result.verdict.ok


def test_fig2_cost_comparison(benchmark):
    """EIG's exponential payloads vs Phase-King's constant ones."""

    def body():
        rows = []
        for t in (1, 2, 3):
            eig = EIGSpec(3 * t + 1, t, BINARY)
            r_eig = run_classic(eig)
            pk = PhaseKingSpec(4 * t + 1, t, BINARY)
            r_pk = run_classic(pk)
            rows.append((
                t,
                f"EIG(l={eig.ell}): {r_eig.metrics.rounds} rounds, "
                f"{r_eig.metrics.payload_bytes} B",
                f"PK(l={pk.ell}): {r_pk.metrics.rounds} rounds, "
                f"{r_pk.metrics.payload_bytes} B",
            ))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 2 baselines: EIG vs Phase-King cost",
         [("t", "EIG", "Phase-King")] + rows)
    # EIG payload bytes must grow much faster than Phase-King's.
    assert len(rows) == 3
