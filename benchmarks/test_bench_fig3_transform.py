"""Benchmark F3: the Figure 3 transformation T(A).

Regenerates the transformation's characteristic behaviour: exactly
three engine rounds per simulated round of ``A`` plus one deciding
round of latency, independence from the homonym pattern, and the cost
of the simulation relative to running ``A`` natively on a unique-
identifier system.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.adversaries.generic import RandomByzantineAdversary
from repro.classic.eig import EIGSpec
from repro.classic.runner import classic_factory
from repro.core.identity import (
    balanced_assignment,
    random_assignment,
    stacked_assignment,
)
from repro.core.params import SystemParams
from repro.core.problem import BINARY
from repro.homonyms.transform import (
    ROUNDS_PER_PHASE,
    transform_factory,
    transform_horizon,
)
from repro.sim.runner import run_agreement


def run_transform(n, ell, t, assignment, byz, adversary=None):
    spec = EIGSpec(ell, t, BINARY)
    params = SystemParams(n=n, ell=ell, t=t)
    result = run_agreement(
        params=params,
        assignment=assignment,
        factory=transform_factory(spec),
        proposals={k: k % 2 for k in range(n) if k not in byz},
        byzantine=byz,
        adversary=adversary,
        max_rounds=transform_horizon(spec),
    )
    return result, spec


ASSIGNMENT_CASES = [
    ("classical", 4, lambda: balanced_assignment(4, 4)),
    ("balanced", 7, lambda: balanced_assignment(7, 4)),
    ("stacked", 8, lambda: stacked_assignment(8, 4)),
    ("random", 10, lambda: random_assignment(10, 4, seed=5)),
]


@pytest.mark.parametrize("name,n,make", ASSIGNMENT_CASES,
                         ids=[c[0] for c in ASSIGNMENT_CASES])
def test_fig3_latency_independent_of_homonym_pattern(benchmark, name, n, make):
    """T(A)'s decision round depends only on A, not on how the n
    processes share the ell identifiers."""

    def body():
        return run_transform(n, 4, 1, make(), byz=(n - 1,))

    result, spec = run_once(benchmark, body)
    expected = ROUNDS_PER_PHASE * spec.max_rounds + 1
    benchmark.extra_info["decision_round"] = result.verdict.last_decision_round
    assert result.verdict.ok
    assert result.verdict.last_decision_round == expected


def test_fig3_overhead_series(benchmark):
    """The 3x round overhead of the simulation, across t."""

    def body():
        rows = []
        for t in (1, 2):
            ell = 3 * t + 1
            n = ell + 3
            # Native A on a unique-identifier system.
            spec = EIGSpec(ell, t, BINARY)
            native = run_agreement(
                params=SystemParams(n=ell, ell=ell, t=t),
                assignment=balanced_assignment(ell, ell),
                factory=classic_factory(spec),
                proposals={k: k % 2 for k in range(ell - t)},
                byzantine=tuple(range(ell - t, ell)),
                max_rounds=spec.max_rounds + 2,
            )
            # T(A) on a homonymous system.
            transformed, _ = run_transform(
                n, ell, t, balanced_assignment(n, ell),
                byz=tuple(range(n - t, n)),
            )
            native_rounds = native.verdict.last_decision_round + 1
            trans_rounds = transformed.verdict.last_decision_round + 1
            rows.append((t, ell, n, native_rounds, trans_rounds,
                         f"{trans_rounds / native_rounds:.1f}x"))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 3 transformation overhead",
         [("t", "ell", "n", "A rounds", "T(A) rounds", "overhead")] + rows)
    for _t, _ell, _n, native_rounds, trans_rounds, _ in rows:
        # Three rounds per simulated round, plus the deciding round of
        # the following phase (counts are 1-based: last index 3k+1 ->
        # 3k+2 rounds).
        assert trans_rounds == 3 * native_rounds + 2


def test_fig3_byzantine_in_group_latency(benchmark):
    """A poisoned group's correct member decides via the deciding round
    in the same phase as everyone else -- the relay adds no phases."""

    def body():
        a = balanced_assignment(7, 4)  # identifier 1 held by slots 0, 4
        return run_transform(
            7, 4, 1, a, byz=(0,),
            adversary=RandomByzantineAdversary(seed=3),
        )

    result, spec = run_once(benchmark, body)
    assert result.verdict.ok
    rounds = result.verdict.decision_rounds
    benchmark.extra_info["decision_rounds"] = dict(sorted(rounds.items()))
    assert max(rounds.values()) - min(rounds.values()) <= ROUNDS_PER_PHASE
