"""Benchmark: message-fabric delivery vs the pre-fabric receiver loop.

:class:`~repro.sim.network.RoundEngine` materialises each round's
common delivery multiset once and stamps per-receiver inboxes from it;
:class:`~repro.sim.network.ReferenceRoundEngine` keeps the old
O(n^2 log n) rebuild-and-sort loop.  This bench steps both engines over
identical workloads at n >= 64, reports steps/second, checks the traces
and exact delivery logs stay byte-identical, and asserts the fabric is
at least 2x faster on the clean hot path.

Like the campaign bench, the speedup assertion is gated so contended CI
machines don't flake: it applies only with at least 2 usable CPUs and
can be tuned (or disabled with 0) via ``FABRIC_BENCH_MIN_SPEEDUP``.
"""

from __future__ import annotations

import os
import time
from typing import Hashable

import pytest

from benchmarks.conftest import emit, run_once, snapshot
from repro.adversaries.generic import RandomByzantineAdversary
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.sim import fabric
from repro.sim.kernel import BasicPsync, ExecutionKernel, LockStep
from repro.sim.network import ReferenceRoundEngine, RoundEngine
from repro.sim.partial import PartitionSchedule
from repro.sim.process import Process


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class BroadcastProcess(Process):
    """Minimal sender so the bench times the engine, not an algorithm."""

    def compose(self, round_no: int) -> Hashable:
        return ("vote", self.identifier, round_no % 4)

    def deliver(self, round_no: int, inbox) -> None:
        pass


def _build(cls, n: int, ell: int, byzantine, adversary):
    params = SystemParams(
        n=n, ell=ell, t=max(1, len(byzantine)),
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
    )
    assignment = balanced_assignment(n, ell)
    processes = [
        None if k in byzantine
        else BroadcastProcess(assignment.identifier_of(k))
        for k in range(n)
    ]
    return cls(
        params=params, assignment=assignment, processes=processes,
        byzantine=byzantine, adversary=adversary,
    )


def _steps_per_second(engine, rounds: int) -> float:
    t0 = time.perf_counter()
    engine.run(max_rounds=rounds, stop_when_all_decided=False)
    return rounds / (time.perf_counter() - t0)


def test_fabric_step_throughput(benchmark):
    """n=64 clean hot path plus a byz-delta variant; >= 2x on the former."""
    n, ell, rounds = 64, 16, 40
    byz = (62, 63)

    def body():
        results = {}
        for label, adversary_fn in (
            ("clean", lambda: None),
            ("byz-delta", lambda: RandomByzantineAdversary(seed=11)),
        ):
            fabric = _build(RoundEngine, n, ell, byz, adversary_fn())
            reference = _build(ReferenceRoundEngine, n, ell, byz,
                               adversary_fn())
            fabric_sps = _steps_per_second(fabric, rounds)
            reference_sps = _steps_per_second(reference, rounds)
            # Differential check: same fabric, same physics.
            assert len(fabric.trace) == len(reference.trace) == rounds
            for a, b in zip(fabric.trace, reference.trace):
                assert (a.payloads, a.emissions) == (b.payloads, b.emissions)
            assert fabric.deliveries == reference.deliveries
            results[label] = (fabric_sps, reference_sps)
        return results

    results = run_once(benchmark, body)

    cpus = _usable_cpus()
    rows = [("workload", "fabric steps/s", "reference steps/s", "speedup")]
    for label, (fabric_sps, reference_sps) in results.items():
        rows.append((
            label, f"{fabric_sps:.1f}", f"{reference_sps:.1f}",
            f"{fabric_sps / reference_sps:.2f}x",
        ))
    emit(f"RoundEngine.step() fabric vs reference (n={n})", rows)

    clean_speedup = results["clean"][0] / results["clean"][1]
    benchmark.extra_info["clean_speedup"] = round(clean_speedup, 2)
    benchmark.extra_info["cpus"] = cpus
    snapshot(
        "fabric",
        {"n": n, "ell": ell, "rounds": rounds, "byzantine": len(byz)},
        ops_per_s=results["clean"][0],
        speedup=clean_speedup,
        extra={"byz_delta_speedup": round(
            results["byz-delta"][0] / results["byz-delta"][1], 2
        )},
    )
    min_speedup = float(os.environ.get("FABRIC_BENCH_MIN_SPEEDUP", "2.0"))
    if cpus >= 2 and min_speedup > 0:
        assert clean_speedup >= min_speedup, (
            f"expected >= {min_speedup}x fabric speedup at n={n}, "
            f"got {clean_speedup:.2f}x"
        )


def _build_timed(n: int, timing) -> ExecutionKernel:
    ell = max(4, n // 4)
    params = SystemParams(
        n=n, ell=ell, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
    )
    assignment = balanced_assignment(n, ell)
    processes = [
        BroadcastProcess(assignment.identifier_of(k)) for k in range(n)
    ]
    return ExecutionKernel(
        params=params, assignment=assignment, processes=processes,
        timing=timing,
    )


def _always_active_partition(n: int) -> PartitionSchedule:
    # An effectively infinite gst keeps the removal machinery engaged
    # every round -- the worst case for the per-receiver dict fabric,
    # the representative case for the mask path (two distinct rows).
    half = n // 2
    return PartitionSchedule(
        10**9, tuple(range(half)), tuple(range(half, n))
    )


@pytest.mark.skipif(
    not fabric.HAVE_NUMPY,
    reason="array path needs numpy (REPRO_NO_NUMPY unset)",
)
def test_fabric_array_gate(benchmark):
    """The PR 9 gate: the numpy mask path delivers >= 5x the dict
    fabric's round throughput at n=256 on an always-active removal
    workload, byte-identically."""
    n, rounds = 256, 10

    def body():
        with fabric.forced_path(True):
            array_engine = _build_timed(n, BasicPsync(
                _always_active_partition(n), None
            ))
            array_sps = _steps_per_second(array_engine, rounds)
        with fabric.forced_path(False):
            scalar_engine = _build_timed(n, BasicPsync(
                _always_active_partition(n), None
            ))
            scalar_sps = _steps_per_second(scalar_engine, rounds)
        # Differential check: both paths, same physics, byte for byte.
        assert array_engine.deliveries == scalar_engine.deliveries
        assert array_engine.losses == scalar_engine.losses
        assert array_engine.trace.snapshot() == scalar_engine.trace.snapshot()

        # Large-n wall clock: n=1000 lockstep rounds complete in seconds.
        with fabric.forced_path(True):
            big = _build_timed(1000, LockStep())
            big_sps = _steps_per_second(big, rounds)
        return array_sps, scalar_sps, big_sps

    array_sps, scalar_sps, big_sps = run_once(benchmark, body)
    speedup = array_sps / scalar_sps
    emit(f"Array fabric vs dict fabric (n={n}, always-active partition)", [
        ("path", "steps/s"),
        ("array (numpy masks)", f"{array_sps:.1f}"),
        ("scalar (dict fabric)", f"{scalar_sps:.1f}"),
        ("speedup", f"{speedup:.2f}x"),
        ("n=1000 lockstep", f"{big_sps:.1f}"),
    ])
    benchmark.extra_info["array_speedup"] = round(speedup, 2)
    benchmark.extra_info["lockstep_1000_sps"] = round(big_sps, 1)
    snapshot(
        "fabric_array",
        {"n": n, "rounds": rounds, "schedule": "partition-always"},
        ops_per_s=array_sps,
        speedup=speedup,
        extra={"lockstep_1000_sps": round(big_sps, 1)},
    )
    cpus = _usable_cpus()
    min_speedup = float(
        os.environ.get("FABRIC_ARRAY_BENCH_MIN_SPEEDUP", "5.0")
    )
    if cpus >= 2 and min_speedup > 0:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup}x array-path speedup at n={n}, "
            f"got {speedup:.2f}x"
        )
        # "n=1000 lockstep runs completing in seconds": >= 10 rounds/s
        # is two orders of magnitude inside that envelope.
        assert big_sps >= 10, f"n=1000 lockstep too slow: {big_sps:.1f} sps"


def test_fabric_scaling_profile(benchmark):
    """Steps/s across n: the gap widens with the quadratic receiver loop."""

    def body():
        series = []
        for n in (16, 32, 64, 96):
            fabric = _build(RoundEngine, n, max(4, n // 4), (n - 1,), None)
            reference = _build(
                ReferenceRoundEngine, n, max(4, n // 4), (n - 1,), None
            )
            rounds = 12
            series.append((
                n,
                _steps_per_second(fabric, rounds),
                _steps_per_second(reference, rounds),
            ))
        return series

    series = run_once(benchmark, body)
    emit("Fabric scaling (steps/s)", [
        ("n", "fabric", "reference", "speedup"),
        *[(n, f"{f:.1f}", f"{r:.1f}", f"{f / r:.2f}x")
          for n, f, r in series],
    ])
    benchmark.extra_info["speedups"] = {
        n: round(f / r, 2) for n, f, r in series
    }
