"""Benchmark: strategy-explorer pruning vs raw branching.

The bounded explorer's performance story is the transposition +
symmetry table keyed on canonical per-receiver state digests: without
it, the per-round emission alphabet at ``n = 4`` (the minimal
synchronous certificate scope) spans a strategy tree of ~10^13 nodes --
naive branching is infeasible.  The table records the *exact* raw
subtree size every hit skipped, so the reduction reported here is a
measurement, not an estimate.

Asserted gates (tunable via ``EXPLORE_BENCH_MIN_REDUCTION``, 0 to
disable):

* the n = 4 exhaustive certificate completes, and its measured
  reduction is at least 10x (the ISSUE's acceptance bar; in practice it
  is over 10^9);
* the n = 3 violation hunt finds its witness and the witness replays to
  the same failing verdict through the plain engine.
"""

from __future__ import annotations

import os

from benchmarks.conftest import emit, run_once, snapshot
from repro.core.params import SystemParams
from repro.explore import default_scenario, explore, replay_witness

MIN_REDUCTION = float(os.environ.get("EXPLORE_BENCH_MIN_REDUCTION", "10"))


def test_bench_explore_certificate_n4(benchmark):
    """Exhaustive sweep just inside the synchronous bound."""
    scenario = default_scenario(SystemParams(n=4, ell=4, t=1))

    certificate = run_once(benchmark, lambda: explore(scenario))
    stats = certificate.stats

    rows = [
        ("outcome", certificate.outcome),
        ("nodes expanded", stats.nodes_expanded),
        ("children generated", stats.children_generated),
        ("transposition hits", stats.transposition_hits),
        ("raw tree size", stats.raw_tree_size),
        ("reduction", f"{stats.pruning_factor:.1f}x"),
        ("elapsed", f"{stats.elapsed_s:.2f}s"),
    ]
    benchmark.extra_info["explore_n4"] = {k: str(v) for k, v in rows}
    emit("explorer certificate, n=4 ell=4 t=1 (sync)", rows)

    snapshot(
        "explore",
        {"n": 4, "ell": 4, "t": 1, "synchrony": "sync"},
        ops_per_s=stats.nodes_expanded / max(stats.elapsed_s, 1e-9),
        extra={
            "nodes_expanded": stats.nodes_expanded,
            "pruning_factor": round(stats.pruning_factor, 1),
            "elapsed_s": round(stats.elapsed_s, 2),
        },
    )

    assert certificate.outcome == "exhausted"
    assert stats.raw_tree_size > stats.nodes_expanded
    if MIN_REDUCTION:
        assert stats.pruning_factor >= MIN_REDUCTION, (
            f"pruning reduced the raw tree only {stats.pruning_factor:.1f}x "
            f"(< {MIN_REDUCTION}x)"
        )


def test_bench_explore_violation_n3(benchmark):
    """Violation hunt just past the synchronous bound, plus replay."""
    scenario = default_scenario(SystemParams(n=3, ell=3, t=1))

    certificate = run_once(benchmark, lambda: explore(scenario))
    stats = certificate.stats

    rows = [
        ("outcome", certificate.outcome),
        ("violated", certificate.violation),
        ("found at round", certificate.violation_round),
        ("nodes expanded", stats.nodes_expanded),
        ("elapsed", f"{stats.elapsed_s:.2f}s"),
    ]
    benchmark.extra_info["explore_n3"] = {k: str(v) for k, v in rows}
    emit("explorer violation hunt, n=3 ell=3 t=1 (sync)", rows)

    assert certificate.found_violation
    replayed = replay_witness(scenario, certificate.witness)
    assert not replayed.verdict.ok
