"""Benchmark suite: one module per paper artefact (Table 1, Figures 1-7,
plus ablations).  Run with ``pytest benchmarks/ --benchmark-only``."""
