"""Benchmark: campaign engine vs sequential harness throughput.

The campaign engine shards the quick Table 1 battery into ~20 workload
units and fans them out over a process pool.  This bench times the
sequential harness and the 4-worker campaign over the same battery,
reports runs/second for both, and checks the verdicts agree run by run.

The >= 2x speedup assertion only applies where it is physically
possible: it is gated on at least 4 usable CPUs (single-CPU CI
containers still run the bench and still check correctness, but a
process pool cannot beat one core with CPU-bound work there).  On a
loaded shared machine the threshold can be tuned (or disabled with 0)
via ``CAMPAIGN_BENCH_MIN_SPEEDUP``.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit, run_once, snapshot
from repro.experiments.campaign import run_campaign, table1_cells
from repro.experiments.harness import evaluate_cell


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_campaign_vs_sequential_throughput(benchmark):
    """Quick battery: sequential harness vs 4-worker campaign."""

    def body():
        t0 = time.perf_counter()
        sequential = [
            evaluate_cell(params, quick=True) for _, params in table1_cells()
        ]
        seq_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        report = run_campaign(workers=4, quick=True)
        par_s = time.perf_counter() - t0
        return sequential, seq_s, report, par_s

    sequential, seq_s, report, par_s = run_once(benchmark, body)

    campaign = report.cell_results()
    assert len(campaign) == len(sequential)
    for seq, par in zip(sequential, campaign):
        assert par.params == seq.params
        assert [(r.label, r.ok) for r in par.runs] == [
            (r.label, r.ok) for r in seq.runs
        ]
        assert par.empirically_consistent and seq.empirically_consistent

    total_runs = sum(len(c.runs) for c in sequential)
    speedup = seq_s / par_s if par_s else float("inf")
    cpus = _usable_cpus()
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = cpus
    snapshot(
        "campaign",
        {"workers": 4, "quick": True, "cells": len(campaign)},
        ops_per_s=total_runs / par_s if par_s else float("inf"),
        speedup=speedup,
        extra={"cpus": cpus},
    )
    emit("Campaign throughput (quick Table 1 battery)", [
        ("mode", "wall s", "runs/s"),
        ("sequential harness", f"{seq_s:.2f}", f"{total_runs / seq_s:.1f}"),
        ("campaign --workers 4", f"{par_s:.2f}",
         f"{total_runs / par_s:.1f}"),
        ("speedup", f"{speedup:.2f}x", f"(on {cpus} usable CPU(s))"),
    ])
    min_speedup = float(os.environ.get("CAMPAIGN_BENCH_MIN_SPEEDUP", "2.0"))
    if cpus >= 4 and min_speedup > 0:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup}x at 4 workers on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )


def test_campaign_resume_skips_completed_units(benchmark, tmp_path):
    """A warm cache turns the battery into pure aggregation."""
    from repro.experiments.campaign import CampaignCache

    cache = CampaignCache(tmp_path / "units")
    cold = run_campaign(quick=True, cache=cache, resume=True)

    def body():
        return run_campaign(quick=True, cache=cache, resume=True)

    warm = run_once(benchmark, body)
    assert warm.executed == 0
    assert warm.cached == len(cold.unit_results)
    assert warm.canonical_dict() == cold.canonical_dict()
    emit("Campaign resume (warm cache)", [
        ("cold wall s", f"{cold.elapsed_s:.2f}"),
        ("warm wall s", f"{warm.elapsed_s:.3f}"),
        ("units cached", warm.cached),
    ])
    assert warm.elapsed_s < cold.elapsed_s / 5
