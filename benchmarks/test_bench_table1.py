"""Benchmark T1: regenerate Table 1 -- the solvability matrix.

For each of the four model families of Table 1 we validate one cell on
each side of the predicted boundary: solvable cells must survive the
(quick) workload battery, unsolvable cells must yield the paper's
constructive demonstration.  The printed grid is the empirical Table 1.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.analysis.bounds import solvable
from repro.analysis.tables import table1_text
from repro.core.params import SystemParams, Synchrony
from repro.experiments.harness import evaluate_cell
from repro.experiments.report import cell_grid_report

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS

#: One cell per (model family, side of the boundary).
TABLE1_CELLS = [
    # -- synchronous, unrestricted (Theorem 3: ell > 3t) ----------------
    ("sync solvable", SystemParams(n=5, ell=4, t=1)),
    ("sync unsolvable", SystemParams(n=5, ell=3, t=1)),
    # -- synchronous, restricted + innumerate (Theorem 19: still 3t) ----
    ("sync-restricted-innum solvable",
     SystemParams(n=5, ell=4, t=1, restricted=True)),
    ("sync-restricted-innum unsolvable",
     SystemParams(n=5, ell=3, t=1, restricted=True)),
    # -- partially synchronous, unrestricted (Theorem 13) ---------------
    ("psync solvable", SystemParams(n=7, ell=6, t=1, synchrony=PSYNC)),
    ("psync unsolvable", SystemParams(n=9, ell=6, t=1, synchrony=PSYNC)),
    # -- restricted + numerate (Theorems 14/15: ell > t) ----------------
    ("restricted-numerate solvable",
     SystemParams(n=4, ell=2, t=1, synchrony=PSYNC,
                  numerate=True, restricted=True)),
    ("restricted-numerate unsolvable",
     SystemParams(n=4, ell=1, t=1, synchrony=PSYNC,
                  numerate=True, restricted=True)),
]


@pytest.mark.parametrize("label,params", TABLE1_CELLS,
                         ids=[c[0] for c in TABLE1_CELLS])
def test_table1_cell(benchmark, label, params):
    """Each Table 1 cell: prediction == empirical outcome."""

    def body():
        return evaluate_cell(params, quick=True)

    cell = run_once(benchmark, body)
    benchmark.extra_info["cell"] = cell.summary()
    emit(f"Table 1 cell: {label}", [
        ("params", params.describe()),
        ("predicted", "solvable" if cell.predicted_solvable else "unsolvable"),
        ("runs", len(cell.runs)),
        ("demonstration", cell.demonstration or "-"),
        ("consistent", cell.empirically_consistent),
    ])
    assert cell.empirically_consistent, cell.summary()
    assert cell.predicted_solvable == solvable(params)


def test_table1_grid_report(benchmark):
    """The assembled empirical Table 1 (all eight cells)."""

    def body():
        return [evaluate_cell(p, quick=True) for _, p in TABLE1_CELLS]

    cells = run_once(benchmark, body)
    report = cell_grid_report(cells)
    print("\n" + table1_text())
    print(report)
    benchmark.extra_info["consistent_cells"] = sum(
        1 for c in cells if c.empirically_consistent
    )
    assert all(c.empirically_consistent for c in cells)
    assert f"{len(cells)}/{len(cells)} cells consistent" in report
