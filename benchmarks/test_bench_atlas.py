"""Benchmark: atlas fusion + streaming-log throughput at lattice scale.

The atlas's scale claim is that per-cell overhead -- evidence fusion,
canonical-JSON row building, the fsync'd append, and the resume scan --
stays trivial next to cell execution, and that memory stays bounded
because rows stream through the log instead of accumulating.  This
bench builds a synthetic 4000-cell lattice worth of evidence (no
simulation -- the point is the atlas machinery itself), pushes it
through ``fuse_evidence`` + ``AtlasLog`` + ``aggregate``, and reports
rows/second for the write, resume-scan, and render folds.

The floor assertion is deliberately loose (``ATLAS_BENCH_MIN_ROWS_PER_S``,
default 200/s: an fsync per row dominates on spinning CI disks); set it
to 0 to disable.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit, run_once, snapshot
from repro.atlas import AtlasLog, aggregate, fuse_evidence
from repro.atlas.evidence import closed_form_evidence
from repro.core.canonical import canonical_json
from repro.core.params import SystemParams, model_space

N_RANGE = range(3, 28)  # 25 n-values x ell=1..n x 8 models ~ 3100 cells


def _synthetic_rows():
    """One evidence-fused row per cell of a large symbolic lattice."""
    index = 0
    for n in N_RANGE:
        for ell in range(1, n + 1):
            for synchrony, numerate, restricted in model_space():
                params = SystemParams(
                    n=n, ell=ell, t=1, synchrony=synchrony,
                    numerate=numerate, restricted=restricted,
                )
                closed = closed_form_evidence(params)
                empirical = {
                    "kind": "campaign",
                    "source": "bench synthetic battery",
                    "claim": closed["claim"],
                    "grade": "verdict",
                    "detail": "synthetic corroboration for throughput "
                              "measurement",
                }
                evidence = [closed, empirical]
                verdict = fuse_evidence(params, evidence)
                yield {
                    "index": index,
                    "unit_id": f"bench{index:08d}",
                    "label": f"n{n} ell{ell} {synchrony.short} "
                             f"{numerate} {restricted}",
                    "cell": {"n": n, "ell": ell, "t": 1,
                             "synchrony": synchrony.short,
                             "numerate": numerate,
                             "restricted": restricted},
                    "predicted": closed["claim"],
                    "verdict": verdict,
                    "algorithm": "bench",
                    "runs": 0,
                    "failures": 0,
                    "evidence": evidence,
                }
                index += 1


def test_fusion_and_stream_throughput(benchmark, tmp_path):
    """Fuse, stream, resume-scan, and fold a ~3100-cell lattice."""
    log = AtlasLog(tmp_path / "bench.jsonl")
    log.reset()

    def body():
        t0 = time.perf_counter()
        ids = []
        for row in _synthetic_rows():
            log.append(row)
            ids.append(row["unit_id"])
        write_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        kept = log.resume_prefix(ids)
        resume_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        agg = aggregate(log.rows())
        fold_s = time.perf_counter() - t0
        return ids, kept, agg, write_s, resume_s, fold_s

    ids, kept, agg, write_s, resume_s, fold_s = run_once(benchmark, body)

    cells = len(ids)
    assert kept == cells, "resume scan must accept its own output"
    assert agg.cells == cells
    assert not agg.conflicts
    # Memory-boundedness proxy: the fold keeps aggregates, not rows --
    # per-(n, t) maps and family tallies only.
    assert len(agg.maps) == len(N_RANGE)

    size_mb = log.path.stat().st_size / 1e6
    rates = {
        "fuse+write": cells / write_s,
        "resume scan": cells / resume_s,
        "render fold": cells / fold_s,
    }
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in rates.items()}
    )
    emit(f"Atlas streaming throughput ({cells} cells, "
         f"{size_mb:.1f} MB log)", [
        ("stage", "wall s", "rows/s"),
        ("fuse + canonical row + fsync append",
         f"{write_s:.2f}", f"{rates['fuse+write']:.0f}"),
        ("resume prefix scan", f"{resume_s:.2f}",
         f"{rates['resume scan']:.0f}"),
        ("aggregate fold (render input)", f"{fold_s:.2f}",
         f"{rates['render fold']:.0f}"),
    ])

    snapshot(
        "atlas",
        {"cells": cells, "n_min": N_RANGE.start,
         "n_max": N_RANGE.stop - 1},
        ops_per_s=rates["fuse+write"],
        extra={
            "resume_scan_rows_per_s": round(rates["resume scan"], 1),
            "render_fold_rows_per_s": round(rates["render fold"], 1),
            "log_mb": round(size_mb, 2),
        },
    )

    floor = float(os.environ.get("ATLAS_BENCH_MIN_ROWS_PER_S", "200"))
    if floor > 0:
        assert rates["fuse+write"] >= floor, (
            f"fuse+write {rates['fuse+write']:.0f} rows/s below the "
            f"{floor:.0f}/s floor"
        )


def test_canonical_rows_are_stable(benchmark):
    """The same lattice fuses to byte-identical rows both times."""

    def body():
        first = [canonical_json(r) for r in _synthetic_rows()]
        second = [canonical_json(r) for r in _synthetic_rows()]
        return first, second

    first, second = run_once(benchmark, body)
    assert first == second


def test_shard_merge_throughput(benchmark, tmp_path):
    """Stripe the synthetic lattice over 3 shard logs, then time the
    merge back into the canonical log -- cross-checking every row's
    verdict against its own evidence is part of the measured cost."""
    from repro.atlas import merge_shards

    shards = 3
    logs = [AtlasLog(tmp_path / f"atlas-{i}-of-{shards}.jsonl")
            for i in range(shards)]
    striped: list[list[dict]] = [[] for _ in range(shards)]
    rows = list(_synthetic_rows())
    for row in rows:
        striped[row["index"] % shards].append(row)
    for log, batch in zip(logs, striped):
        log.reset()
        log.append_many(batch)

    reference = AtlasLog(tmp_path / "reference.jsonl")
    reference.reset()
    reference.append_many(rows)

    fused = tmp_path / "atlas.jsonl"

    def body():
        t0 = time.perf_counter()
        outcome = merge_shards([log.path for log in logs], fused)
        return outcome, time.perf_counter() - t0

    outcome, merge_s = run_once(benchmark, body)

    cells = len(rows)
    assert outcome.rows == cells
    assert outcome.ok
    assert fused.read_bytes() == reference.path.read_bytes(), (
        "merged shard logs must be byte-identical to the unsharded log"
    )

    rate = cells / merge_s
    benchmark.extra_info["merge rows/s"] = round(rate, 1)
    emit(f"Atlas shard merge throughput ({cells} cells, "
         f"{shards} shards)", [
        ("stage", "wall s", "rows/s"),
        ("parse + cross-check + fuse + write",
         f"{merge_s:.2f}", f"{rate:.0f}"),
    ])

    snapshot(
        "atlas_merge",
        {"cells": cells, "shards": shards},
        ops_per_s=rate,
        extra={"log_mb": round(fused.stat().st_size / 1e6, 2)},
    )

    floor = float(os.environ.get("ATLAS_MERGE_MIN_ROWS_PER_S", "500"))
    if floor > 0:
        assert rate >= floor, (
            f"shard merge {rate:.0f} rows/s below the {floor:.0f}/s floor"
        )
