"""Benchmark F5: the Figure 5 partially synchronous homonym algorithm.

Regenerates the algorithm's behaviour across the dimensions the paper's
analysis quantifies over: decision latency as a function of the
stabilisation time (GST), of the identifier count at the solvability
boundary ``2*ell = n + 3t + 1``, and resilience at the boundary under
the named attack suite (including the lock-split attack that the voting
superround exists to defuse -- see the ablation bench for the contrast).
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.adversaries.generic import RandomByzantineAdversary
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.ablations import LockSplitAdversary
from repro.psync.dls_homonyms import ROUNDS_PER_PHASE, dls_factory, dls_horizon
from repro.sim.partial import SilenceUntil
from repro.sim.runner import run_agreement


def run_dls(params, byz, adversary=None, gst=0):
    schedule = SilenceUntil(gst) if gst else None
    return run_agreement(
        params=params,
        assignment=balanced_assignment(params.n, params.ell),
        factory=dls_factory(params, BINARY),
        proposals={k: k % 2 for k in range(params.n) if k not in byz},
        byzantine=byz,
        adversary=adversary,
        drop_schedule=schedule,
        max_rounds=dls_horizon(params, gst),
    )


GSTS = [0, 8, 16, 32]


@pytest.mark.parametrize("gst", GSTS, ids=[f"gst{g}" for g in GSTS])
def test_fig5_latency_vs_gst(benchmark, gst):
    """Decision latency tracks stabilisation time linearly."""
    params = SystemParams(
        n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )

    def body():
        return run_dls(params, byz=(6,), gst=gst)

    result = run_once(benchmark, body)
    last = result.verdict.last_decision_round
    benchmark.extra_info["decision_round"] = last
    assert result.verdict.ok
    assert last >= gst  # nothing decides during total silence
    # and within a few phases of stabilisation:
    assert last <= gst + (params.ell + 3) * ROUNDS_PER_PHASE


BOUNDARY_CASES = [
    # (n, ell, t): tightest solvable points 2*ell = n + 3t + 1.
    (4, 4, 1),
    (6, 5, 1),
    (8, 6, 1),
    (10, 7, 1),
    (9, 8, 2),
]


@pytest.mark.parametrize("n,ell,t", BOUNDARY_CASES,
                         ids=[f"n{n}-l{l}-t{t}" for n, l, t in BOUNDARY_CASES])
def test_fig5_at_the_solvability_boundary(benchmark, n, ell, t):
    """The algorithm survives at the exact edge of Theorem 13."""
    assert 2 * ell == n + 3 * t + 1
    params = SystemParams(
        n=n, ell=ell, t=t, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )
    byz = tuple(range(n - t, n))

    def body():
        return run_dls(params, byz=byz,
                       adversary=RandomByzantineAdversary(seed=7))

    result = run_once(benchmark, body)
    benchmark.extra_info["decision_round"] = result.verdict.last_decision_round
    assert result.verdict.ok


def test_fig5_lock_split_attack_defused(benchmark):
    """The voting superround neutralises a leader showing different lock
    values to different processes (Lemma 8)."""
    params = SystemParams(
        n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )

    def body():
        return run_dls(params, byz=(1,), adversary=LockSplitAdversary())

    result = run_once(benchmark, body)
    assert result.verdict.ok


def test_fig5_latency_series(benchmark):
    """The full latency table (GST x boundary) the figure bench prints."""

    def body():
        rows = []
        for gst in GSTS:
            params = SystemParams(
                n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
            )
            result = run_dls(params, byz=(6,), gst=gst)
            rows.append((gst, result.verdict.last_decision_round,
                         result.metrics.total_messages))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 5 decision latency vs GST (n=7, ell=6, t=1)",
         [("gst", "last decision round", "messages")] + rows)
    # Latency is monotone in GST.
    latencies = [row[1] for row in rows]
    assert latencies == sorted(latencies)
