"""Benchmark F7: the Figure 7 restricted-numerate algorithm.

Regenerates the paper's headline for Section 5: with restricted
Byzantine processes and numerate receivers, ``t + 1`` identifiers
suffice -- far below the ``> (n + 3t)/2`` of the unrestricted model.
The series shows decision latency at ``ell = t + 1`` across (n, t), and
the contrast run shows the same configuration collapsing once the
adversary regains the unrestricted multi-send power (flooding proper
sets through the same-round message-count rule), which is exactly why
Table 1's restricted column needs the restriction.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.adversaries.generic import RandomByzantineAdversary
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.restricted import (
    ROUNDS_PER_PHASE,
    restricted_factory,
    restricted_horizon,
)
from repro.sim.adversary import Adversary
from repro.sim.partial import SilenceUntil
from repro.sim.runner import run_agreement


def make_params(n, ell, t, restricted=True):
    return SystemParams(
        n=n, ell=ell, t=t,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=True, restricted=restricted,
    )


def run_fig7(params, byz, adversary=None, gst=0, proposals=None,
             unchecked=False):
    if proposals is None:
        proposals = {k: k % 2 for k in range(params.n) if k not in byz}
    return run_agreement(
        params=params,
        assignment=balanced_assignment(params.n, params.ell),
        factory=restricted_factory(params, BINARY, unchecked=unchecked),
        proposals=proposals,
        byzantine=byz,
        adversary=adversary,
        drop_schedule=SilenceUntil(gst) if gst else None,
        max_rounds=restricted_horizon(params, gst),
    )


MINIMAL_CASES = [
    # ell = t + 1 everywhere: the minimum the theorem allows.
    (4, 2, 1),
    (6, 2, 1),
    (7, 3, 2),
    (10, 3, 2),
    (13, 4, 3),
]


@pytest.mark.parametrize("n,ell,t", MINIMAL_CASES,
                         ids=[f"n{n}-l{l}-t{t}" for n, l, t in MINIMAL_CASES])
def test_fig7_minimal_identifiers(benchmark, n, ell, t):
    """Agreement with just t + 1 identifiers."""
    assert ell == t + 1
    params = make_params(n, ell, t)
    byz = tuple(range(n - t, n))

    def body():
        return run_fig7(params, byz,
                        adversary=RandomByzantineAdversary(seed=3))

    result = run_once(benchmark, body)
    benchmark.extra_info["decision_round"] = result.verdict.last_decision_round
    assert result.verdict.ok


def test_fig7_latency_vs_gst_series(benchmark):
    def body():
        rows = []
        for gst in (0, 8, 16, 32):
            params = make_params(4, 2, 1)
            result = run_fig7(params, byz=(3,), gst=gst)
            rows.append((gst, result.verdict.last_decision_round))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 7 decision latency vs GST (n=4, ell=2, t=1)",
         [("gst", "last decision round")] + rows)
    latencies = [row[1] for row in rows]
    assert latencies == sorted(latencies)
    assert all(lat >= gst for gst, lat in rows)


class ProperFloodAdversary(Adversary):
    """What the restriction forbids: the Byzantine process sends t + 1
    copies of a bundle carrying a poisoned proper set in one round,
    flooding the same-round message-count rule and destroying validity.
    Only runnable with ``restricted=False`` -- which is the point."""

    def __init__(self, value):
        self.value = value

    def emissions(self, view):
        bundle = ("fig7", (), (), (self.value,))
        t = view.params.t
        return {
            b: {q: tuple([bundle] * (t + 1)) for q in range(view.params.n)}
            for b in view.byzantine
        }


def test_fig7_contrast_unrestricted_adversary_breaks_it(benchmark):
    """Lifting the restriction at ell = t + 1 re-enables the Theorem 13
    bound: a flooding adversary pollutes proper sets and breaks
    validity.  (2*ell = 4 <= n + 3t = 7, so this configuration is
    unsolvable for unrestricted Byzantine processes.)

    The flood needs a window: correct messages are silenced for the
    first phase (legal in the DLS model) while the Byzantine flood --
    immune to drop schedules, the adversary chooses its deliveries --
    plants value 0 in every proper set via the t+1-same-round-messages
    rule.  The first post-silence leader then locks the poisoned value.
    """
    params = make_params(4, 2, 1, restricted=False)

    def body():
        return run_fig7(
            params, byz=(3,),
            adversary=ProperFloodAdversary(value=0),
            proposals={k: 1 for k in range(3)},  # unanimous 1
            gst=8,
            unchecked=True,
        )

    result = run_once(benchmark, body)
    emit("Figure 7 contrast: unrestricted flood at ell=t+1",
         [("verdict", result.verdict.summary())])
    assert not result.verdict.ok
    assert result.verdict.violated("validity")


def test_fig7_identifier_savings_series(benchmark):
    """The headline table: identifiers needed, restricted vs
    unrestricted, as n grows (t = 1)."""
    from repro.analysis.bounds import restriction_gain

    def body():
        return [(n, *restriction_gain(n, 1)) for n in range(4, 13)]

    rows = run_once(benchmark, body)
    emit("Identifier requirement: unrestricted vs restricted (t=1)",
         [("n", "min ell unrestricted", "min ell restricted")] + rows)
    for _n, unrestricted, restricted in rows:
        assert restricted == 2  # t + 1
        assert unrestricted >= restricted
