"""Benchmark: kernel ``DelayBased`` vs the per-message delay tick loop.

The legacy :class:`~repro.sim.delay.ReferenceDelaySimulator` puts every
copy of every broadcast in flight individually and sweeps the in-flight
list once per tick -- O(delta * n^2) work per round before it even
builds an inbox.  The unified kernel's
:class:`~repro.sim.kernel.DelayBased` timing model computes each
round's late edges directly on the message fabric (and, once the
policy's ``max_late_tick`` has passed, skips delay evaluation entirely
and stamps the shared canonical inbox).  This bench runs both over
identical workloads at n = 64, checks the traces and loss sets stay
equivalent, and asserts the kernel is at least 2x faster.

Like the fabric bench, the speedup assertion is gated so contended CI
machines don't flake: it applies only with at least 2 usable CPUs and
can be tuned (or disabled with 0) via ``DELAY_BENCH_MIN_SPEEDUP``.
"""

from __future__ import annotations

import os
import time
from typing import Hashable

from benchmarks.conftest import emit, run_once, snapshot
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.sim.delay import EventuallyBoundedDelays, ReferenceDelaySimulator
from repro.sim.kernel import DelayBased, ExecutionKernel
from repro.sim.process import Process


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class BroadcastProcess(Process):
    """Minimal sender so the bench times the engine, not an algorithm."""

    def compose(self, round_no: int) -> Hashable:
        return ("vote", self.identifier, round_no % 4)

    def deliver(self, round_no: int, inbox) -> None:
        pass


def _setup(n: int, ell: int):
    params = SystemParams(
        n=n, ell=ell, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
    )
    assignment = balanced_assignment(n, ell)
    processes = [
        BroadcastProcess(assignment.identifier_of(k)) for k in range(n)
    ]
    return params, assignment, processes


def _policy(seed: int = 0) -> EventuallyBoundedDelays:
    # Four chaotic rounds, then punctual: the realistic delay profile
    # (losses are finite) and the kernel's fast-path showcase.
    return EventuallyBoundedDelays(delta=4, gst_tick=16, chaos_factor=3,
                                   seed=seed)


def test_delay_kernel_throughput(benchmark):
    """n=64 delay rounds: kernel DelayBased vs the tick loop, >= 2x."""
    n, ell, rounds = 64, 16, 32

    def body():
        params, assignment, procs_ref = _setup(n, ell)
        reference = ReferenceDelaySimulator(
            params, assignment, procs_ref, _policy()
        )
        t0 = time.perf_counter()
        ref_result = reference.run(max_rounds=rounds,
                                   stop_when_all_decided=False)
        ref_sps = rounds / (time.perf_counter() - t0)

        params, assignment, procs_k = _setup(n, ell)
        kernel = ExecutionKernel(
            params=params, assignment=assignment, processes=procs_k,
            timing=DelayBased(_policy()),
        )
        t0 = time.perf_counter()
        kernel.run(max_rounds=rounds, stop_when_all_decided=False)
        kernel_sps = rounds / (time.perf_counter() - t0)

        # Differential check: same physics under both loops.
        assert len(kernel.trace) == len(ref_result.trace) == rounds
        for a, b in zip(kernel.trace, ref_result.trace):
            assert (a.payloads, a.emissions) == (b.payloads, b.emissions)
        assert sorted(kernel.losses) == sorted(ref_result.dropped)
        return kernel_sps, ref_sps

    kernel_sps, ref_sps = run_once(benchmark, body)
    speedup = kernel_sps / ref_sps
    emit(f"DelayBased kernel vs per-message tick loop (n={n})", [
        ("engine", "steps/s"),
        ("kernel DelayBased", f"{kernel_sps:.1f}"),
        ("reference tick loop", f"{ref_sps:.1f}"),
        ("speedup", f"{speedup:.2f}x"),
    ])

    cpus = _usable_cpus()
    benchmark.extra_info["delay_speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = cpus
    snapshot(
        "delay_kernel",
        {"n": n, "ell": ell, "rounds": rounds},
        ops_per_s=kernel_sps,
        speedup=speedup,
    )
    min_speedup = float(os.environ.get("DELAY_BENCH_MIN_SPEEDUP", "2.0"))
    if cpus >= 2 and min_speedup > 0:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup}x delay-kernel speedup at n={n}, "
            f"got {speedup:.2f}x"
        )
