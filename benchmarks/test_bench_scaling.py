"""Scaling benchmark: the protocols as n grows.

Not a paper artefact (the paper leaves complexity open) but a release
requirement: users need the cost curve.  The series report decision
rounds and message counts as the system grows along two paper-relevant
trajectories:

* Figure 5 at the minimal solvable identifier count for each ``n``
  (``ell = floor((n + 3t)/2) + 1``);
* Figure 7 pinned at ``ell = t + 1`` while ``n`` grows -- the identifier
  count is *constant* in n, the whole point of the restricted model;
* raw kernel round throughput over the array fabric's target range
  (n into the thousands), written to ``BENCH_scaling.json`` so
  ``make bench-diff`` tracks the large-n win.

The cost-model bounds of :mod:`repro.analysis.complexity` are asserted
along the way, so the printed curves are guaranteed, not incidental.
"""

import time
from typing import Hashable

import pytest

from benchmarks.conftest import emit, run_once, snapshot
from repro.analysis.complexity import (
    dls_all_decided_bound,
    restricted_all_decided_bound,
)
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory
from repro.psync.restricted import restricted_factory
from repro.sim import fabric
from repro.sim.kernel import BasicPsync, ExecutionKernel
from repro.sim.partial import PartitionSchedule
from repro.sim.process import Process
from repro.sim.runner import run_agreement

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS


def run_fig5(n, t=1):
    ell = (n + 3 * t) // 2 + 1
    params = SystemParams(n=n, ell=ell, t=t, synchrony=PSYNC)
    byz = tuple(range(n - t, n))
    result = run_agreement(
        params=params,
        assignment=balanced_assignment(n, ell),
        factory=dls_factory(params, BINARY),
        proposals={k: k % 2 for k in range(n - t)},
        byzantine=byz,
        max_rounds=dls_all_decided_bound(params, 0) + 8,
    )
    return params, result


def run_fig7(n, t=1):
    ell = t + 1
    params = SystemParams(n=n, ell=ell, t=t, synchrony=PSYNC,
                          numerate=True, restricted=True)
    byz = tuple(range(n - t, n))
    result = run_agreement(
        params=params,
        assignment=balanced_assignment(n, ell),
        factory=restricted_factory(params, BINARY),
        proposals={k: k % 2 for k in range(n - t)},
        byzantine=byz,
        max_rounds=restricted_all_decided_bound(params, 0) + 8,
    )
    return params, result


def test_scaling_fig5(benchmark):
    def body():
        rows = []
        for n in (6, 8, 10, 12, 14):
            params, result = run_fig5(n)
            assert result.verdict.ok
            assert result.verdict.last_decision_round <= \
                dls_all_decided_bound(params, 0)
            rows.append((n, params.ell,
                         result.verdict.last_decision_round,
                         result.metrics.total_messages))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 5 scaling at minimal ell (t=1)",
         [("n", "ell", "last decision round", "messages")] + rows)
    # Identifier demand grows with n -- the unrestricted model's tax.
    ells = [row[1] for row in rows]
    assert ells == sorted(ells) and ells[-1] > ells[0]


def test_scaling_fig7(benchmark):
    def body():
        rows = []
        for n in (4, 6, 8, 10, 12):
            params, result = run_fig7(n)
            assert result.verdict.ok
            assert result.verdict.last_decision_round <= \
                restricted_all_decided_bound(params, 0)
            rows.append((n, params.ell,
                         result.verdict.last_decision_round,
                         result.metrics.total_messages))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 7 scaling at ell = t + 1 (t=1)",
         [("n", "ell", "last decision round", "messages")] + rows)
    # Identifier demand is constant in n -- the restricted dividend.
    assert {row[1] for row in rows} == {2}


# ----------------------------------------------------------------------
# Large-n fabric range
# ----------------------------------------------------------------------
class _Broadcaster(Process):
    """Constant-shape sender: times the delivery engine, nothing else."""

    def compose(self, round_no: int) -> Hashable:
        return ("vote", self.identifier, round_no % 4)

    def deliver(self, round_no: int, inbox) -> None:
        pass


def _kernel_at(n: int) -> ExecutionKernel:
    ell = max(4, n // 8)
    params = SystemParams(n=n, ell=ell, t=1, synchrony=PSYNC)
    assignment = balanced_assignment(n, ell)
    half = n // 2
    return ExecutionKernel(
        params=params,
        assignment=assignment,
        processes=[
            _Broadcaster(assignment.identifier_of(k)) for k in range(n)
        ],
        # Always-active partition: the removal machinery works every
        # round, the regime the array fabric exists for.
        timing=BasicPsync(
            PartitionSchedule(
                10**9, tuple(range(half)), tuple(range(half, n))
            ),
            None,
        ),
    )


LARGE_NS = (128, 256, 512, 1024)


def test_scaling_large_n_kernel_throughput(benchmark):
    """Kernel steps/s over the array fabric's target range, snapshotted
    as ``BENCH_scaling.json`` for the bench-diff trajectory."""
    rounds = 6

    def body():
        series = []
        for n in LARGE_NS:
            engine = _kernel_at(n)
            t0 = time.perf_counter()
            engine.run(max_rounds=rounds, stop_when_all_decided=False)
            series.append((n, rounds / (time.perf_counter() - t0)))
        return series

    series = run_once(benchmark, body)
    path = "array" if fabric.array_path_enabled() else "scalar"
    emit(f"Kernel round throughput, always-active partition ({path} path)", [
        ("n", "steps/s"),
        *[(n, f"{sps:.1f}") for n, sps in series],
    ])
    benchmark.extra_info["steps_per_s"] = {
        n: round(sps, 1) for n, sps in series
    }
    by_n = dict(series)
    snapshot(
        "scaling",
        {"ns": list(LARGE_NS), "rounds": rounds,
         "schedule": "partition-always"},
        ops_per_s=by_n[256],
        extra={
            "path": path,
            "steps_per_s": {str(n): round(sps, 1) for n, sps in series},
        },
    )
    # Even the scalar fallback clears one round/s at n=1024; the array
    # path clears it by orders of magnitude.  A floor, not a race.
    assert by_n[1024] >= 1.0
