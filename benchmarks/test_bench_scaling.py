"""Scaling benchmark: the protocols as n grows.

Not a paper artefact (the paper leaves complexity open) but a release
requirement: users need the cost curve.  The series report decision
rounds and message counts as the system grows along two paper-relevant
trajectories:

* Figure 5 at the minimal solvable identifier count for each ``n``
  (``ell = floor((n + 3t)/2) + 1``);
* Figure 7 pinned at ``ell = t + 1`` while ``n`` grows -- the identifier
  count is *constant* in n, the whole point of the restricted model.

The cost-model bounds of :mod:`repro.analysis.complexity` are asserted
along the way, so the printed curves are guaranteed, not incidental.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.analysis.complexity import (
    dls_all_decided_bound,
    restricted_all_decided_bound,
)
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory
from repro.psync.restricted import restricted_factory
from repro.sim.runner import run_agreement

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS


def run_fig5(n, t=1):
    ell = (n + 3 * t) // 2 + 1
    params = SystemParams(n=n, ell=ell, t=t, synchrony=PSYNC)
    byz = tuple(range(n - t, n))
    result = run_agreement(
        params=params,
        assignment=balanced_assignment(n, ell),
        factory=dls_factory(params, BINARY),
        proposals={k: k % 2 for k in range(n - t)},
        byzantine=byz,
        max_rounds=dls_all_decided_bound(params, 0) + 8,
    )
    return params, result


def run_fig7(n, t=1):
    ell = t + 1
    params = SystemParams(n=n, ell=ell, t=t, synchrony=PSYNC,
                          numerate=True, restricted=True)
    byz = tuple(range(n - t, n))
    result = run_agreement(
        params=params,
        assignment=balanced_assignment(n, ell),
        factory=restricted_factory(params, BINARY),
        proposals={k: k % 2 for k in range(n - t)},
        byzantine=byz,
        max_rounds=restricted_all_decided_bound(params, 0) + 8,
    )
    return params, result


def test_scaling_fig5(benchmark):
    def body():
        rows = []
        for n in (6, 8, 10, 12, 14):
            params, result = run_fig5(n)
            assert result.verdict.ok
            assert result.verdict.last_decision_round <= \
                dls_all_decided_bound(params, 0)
            rows.append((n, params.ell,
                         result.verdict.last_decision_round,
                         result.metrics.total_messages))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 5 scaling at minimal ell (t=1)",
         [("n", "ell", "last decision round", "messages")] + rows)
    # Identifier demand grows with n -- the unrestricted model's tax.
    ells = [row[1] for row in rows]
    assert ells == sorted(ells) and ells[-1] > ells[0]


def test_scaling_fig7(benchmark):
    def body():
        rows = []
        for n in (4, 6, 8, 10, 12):
            params, result = run_fig7(n)
            assert result.verdict.ok
            assert result.verdict.last_decision_round <= \
                restricted_all_decided_bound(params, 0)
            rows.append((n, params.ell,
                         result.verdict.last_decision_round,
                         result.metrics.total_messages))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 7 scaling at ell = t + 1 (t=1)",
         [("n", "ell", "last decision round", "messages")] + rows)
    # Identifier demand is constant in n -- the restricted dividend.
    assert {row[1] for row in rows} == {2}
