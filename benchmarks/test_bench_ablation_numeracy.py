"""Ablation A3: numerate vs innumerate delivery for the restricted model.

Theorem 19 says restriction buys nothing without numeracy: innumerate
processes still need ``ell > 3t``.  Mechanically, homonym clones emit
identical bundles which an innumerate (set-semantics) inbox collapses
into one message, so every count the Figure 7 algorithm relies on --
init multiplicities, echo support, ack quorums -- silently undercounts
and the protocol starves.  The bench runs the identical configuration
under both delivery semantics.
"""

from benchmarks.conftest import emit, run_once
from repro.core.identity import stacked_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.restricted import restricted_factory, restricted_horizon
from repro.sim.runner import run_agreement


def run_with_numeracy(numerate):
    params = SystemParams(
        n=6, ell=2, t=1,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=numerate, restricted=True,
    )
    return run_agreement(
        params=params,
        assignment=stacked_assignment(6, 2),
        factory=restricted_factory(params, BINARY, unchecked=True),
        proposals={k: 1 for k in range(5)},
        byzantine=(5,),
        max_rounds=restricted_horizon(params, 0),
    )


def test_ablation_numeracy(benchmark):
    def body():
        return run_with_numeracy(True), run_with_numeracy(False)

    numerate, innumerate = run_once(benchmark, body)
    emit("Ablation A3: delivery semantics at n=6, ell=2, t=1", [
        ("numerate (Theorem 15 regime)",
         numerate.verdict.summary().splitlines()[0]),
        ("innumerate (Theorem 19 regime)",
         innumerate.verdict.summary().splitlines()[0]),
    ])
    benchmark.extra_info["numerate_ok"] = numerate.verdict.ok
    benchmark.extra_info["innumerate_ok"] = innumerate.verdict.ok
    assert numerate.verdict.ok
    assert not innumerate.verdict.ok
    assert innumerate.verdict.violated("termination")
