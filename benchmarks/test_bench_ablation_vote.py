"""Ablation A1: remove the voting superround from Figure 5.

The paper (Section 4.2, difference (2)) adds a voting superround to DLS
because a phase can have *several* leaders -- homonyms or a Byzantine
process sharing the leader identifier -- asking processes to lock
different values.  This bench removes the superround and shows the
predicted failure: a lock-split Byzantine leader permanently divides
the correct processes' lock sets, no propose quorum ever forms again,
and the run deadlocks (termination violated).  The intact algorithm
shrugs the same attack off.
"""

from benchmarks.conftest import emit, run_once
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.ablations import LockSplitAdversary, no_vote_factory
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.runner import run_agreement


def run_variant(factory_maker):
    params = SystemParams(
        n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )
    byz = (1,)  # identifier 2: leads phase 1, after proper sets merge
    return run_agreement(
        params=params,
        assignment=balanced_assignment(7, 6),
        factory=factory_maker(params, BINARY),
        proposals={k: k % 2 for k in range(7) if k not in byz},
        byzantine=byz,
        adversary=LockSplitAdversary(),
        max_rounds=dls_horizon(params, 0),
    )


def test_ablation_vote_superround(benchmark):
    def body():
        full = run_variant(dls_factory)
        ablated = run_variant(no_vote_factory)
        return full, ablated

    full, ablated = run_once(benchmark, body)
    emit("Ablation A1: voting superround vs lock-split leader", [
        ("full Figure 5", full.verdict.summary().splitlines()[0]),
        ("no-vote variant", ablated.verdict.summary().splitlines()[0]),
    ])
    benchmark.extra_info["full_ok"] = full.verdict.ok
    benchmark.extra_info["ablated_ok"] = ablated.verdict.ok
    assert full.verdict.ok
    assert not ablated.verdict.ok
    assert ablated.verdict.violated("termination")
