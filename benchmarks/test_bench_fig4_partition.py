"""Benchmark F4: the Figure 4 partition attack (Proposition 4).

Regenerates the partially synchronous lower bound: for every
configuration with ``3t < ell`` and ``2*ell <= n + 3t`` the three-
execution construction drives the Figure 5 algorithm (built unchecked)
into an agreement violation -- wing W0 decides 0, wing W1 decides 1.
The same construction is *infeasible* one process below the boundary,
and the algorithm provably survives there (cross-checked by the
Figure 5 bench).
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.adversaries.partition import (
    partition_attack_feasible,
    run_partition_attack,
)
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import DLSHomonymProcess, dls_horizon

CASES = [
    (9, 6, 1),   # exactly at the bound: 2*ell = n + 3t
    (10, 6, 1),  # one past it
    (12, 7, 1),
    (16, 11, 2),
]


def make_factory(n, ell, t):
    params = SystemParams(
        n=n, ell=ell, t=t, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )

    def factory(ident, value):
        return DLSHomonymProcess(params, BINARY, ident, value, unchecked=True)

    return factory, params


@pytest.mark.parametrize("n,ell,t", CASES,
                         ids=[f"n{n}-l{l}-t{t}" for n, l, t in CASES])
def test_fig4_partition_attack(benchmark, n, ell, t):
    factory, params = make_factory(n, ell, t)

    def body():
        return run_partition_attack(
            n, ell, t, factory, reference_rounds=dls_horizon(params, 0)
        )

    outcome = run_once(benchmark, body)
    gamma = outcome.gamma
    w0_decisions = {gamma.processes[k].decision for k in outcome.w0}
    w1_decisions = {gamma.processes[k].decision for k in outcome.w1}
    benchmark.extra_info["w0"] = sorted(map(repr, w0_decisions))
    benchmark.extra_info["w1"] = sorted(map(repr, w1_decisions))
    emit(f"Figure 4 partition n={n} ell={ell} t={t}", [
        ("alpha", outcome.alpha.verdict.summary()),
        ("beta", outcome.beta.verdict.summary()),
        ("gamma W0 decisions", sorted(map(repr, w0_decisions))),
        ("gamma W1 decisions", sorted(map(repr, w1_decisions))),
    ])
    assert outcome.alpha.verdict.ok and outcome.beta.verdict.ok
    assert outcome.attack_succeeded
    assert gamma.verdict.violated("agreement")
    assert w0_decisions == {0} and w1_decisions == {1}


def test_fig4_feasibility_boundary(benchmark):
    """The construction exists exactly below the Theorem 13 boundary."""

    def body():
        rows = []
        t = 1
        ell = 6
        for n in range(6, 14):
            feasible = partition_attack_feasible(n, ell, t)
            solvable_side = 2 * ell > n + 3 * t
            rows.append((n, ell, t, feasible, solvable_side))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 4 feasibility boundary (ell=6, t=1)",
         [("n", "ell", "t", "attack feasible", "predicted solvable")] + rows)
    for _n, _ell, _t, feasible, solvable_side in rows:
        assert feasible == (not solvable_side)
