"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artefacts (Table 1 or a
figure).  The regenerated rows/series are attached to the benchmark
record via ``benchmark.extra_info`` and printed, so
``pytest benchmarks/ --benchmark-only -s`` shows the same tables the
paper reports.  Heavy constructions run exactly once via
``benchmark.pedantic(rounds=1)`` -- the interesting output is the
series, not nanosecond timing stability.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run a heavyweight benchmark body exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(title: str, rows) -> str:
    """Format and print a series table; returns the text."""
    lines = [f"\n=== {title} ==="]
    for row in rows:
        lines.append("  " + " | ".join(str(cell) for cell in row))
    text = "\n".join(lines)
    print(text)
    return text
