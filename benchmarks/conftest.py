"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artefacts (Table 1 or a
figure).  The regenerated rows/series are attached to the benchmark
record via ``benchmark.extra_info`` and printed, so
``pytest benchmarks/ --benchmark-only -s`` shows the same tables the
paper reports.  Heavy constructions run exactly once via
``benchmark.pedantic(rounds=1)`` -- the interesting output is the
series, not nanosecond timing stability.

Benchmarks that compare a hot path against its frozen reference also
call :func:`snapshot`, which -- when ``BENCH_SNAPSHOT_DIR`` is set
(``make bench-snapshot`` sets it) -- writes a machine-readable
``BENCH_<topic>.json`` next to the other CI artefacts, so speedup
history can be tracked without scraping pytest output.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def run_once(benchmark, fn):
    """Run a heavyweight benchmark body exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def snapshot(
    topic: str,
    params: dict,
    ops_per_s: float,
    speedup: float | None = None,
    extra: dict | None = None,
) -> Path | None:
    """Write the ``BENCH_<topic>.json`` machine-readable snapshot.

    A no-op (returning ``None``) unless the ``BENCH_SNAPSHOT_DIR``
    environment variable names a directory; benchmarks therefore stay
    side-effect free in plain test runs.

    Args:
        topic: Snapshot topic; becomes the ``BENCH_<topic>.json`` name.
        params: The workload parameters (n, rounds, ...).
        ops_per_s: Throughput of the optimised path.
        speedup: Throughput ratio vs the frozen reference loop, if the
            bench ran one.
        extra: Additional JSON-compatible fields to record.

    Returns:
        The written path, or ``None`` when snapshots are disabled.
    """
    root = os.environ.get("BENCH_SNAPSHOT_DIR")
    if not root:
        return None
    payload = {
        "topic": topic,
        "params": params,
        "ops_per_s": round(ops_per_s, 2),
        "speedup": None if speedup is None else round(speedup, 2),
    }
    if extra:
        payload.update(extra)
    out = Path(root)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{topic}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def emit(title: str, rows) -> str:
    """Format and print a series table; returns the text."""
    lines = [f"\n=== {title} ==="]
    for row in rows:
        lines.append("  " + " | ".join(str(cell) for cell in row))
    text = "\n".join(lines)
    print(text)
    return text
