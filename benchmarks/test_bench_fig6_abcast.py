"""Benchmark F6: the Figure 6 multiplicity authenticated broadcast.

Regenerates the primitive's specification behaviour as measurable
series: multiplicity accuracy (alpha' between the correct-broadcaster
count and that count plus f_i -- the Correctness and Unforgeability
window), accept latency within the broadcast superround after
stabilisation, and the relay bound.  Runs ride the kernel runner
(`repro.broadcast.runner.run_multiplicity_broadcast`), the same path
`tests/test_kernel_conformance.py` pins against the frozen oracle.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.broadcast.multiplicity import ECHO_TAG
from repro.broadcast.runner import run_multiplicity_broadcast
from repro.core.identity import stacked_assignment
from repro.sim.adversary import Adversary


def run_broadcast_system(n, ell, t, byz=(), adversary=None, rounds=8):
    run = run_multiplicity_broadcast(
        n, ell, t, broadcaster_ident=1,  # identifier 1 broadcasts "m"
        byzantine=byz, adversary=adversary, rounds=rounds,
    )
    return run.correct_processes, run.assignment


class CountInflator(Adversary):
    """Byzantine holder of identifier 1 echoing an absurd multiplicity."""

    def emissions(self, view):
        payload = ("mb", ((ECHO_TAG, 1, 10_000, "m", 0),))
        return {
            b: {q: (payload,) for q in range(view.params.n)}
            for b in view.byzantine
        }


SIZES = [(5, 3, 1), (7, 3, 1), (9, 4, 2), (13, 4, 3)]


@pytest.mark.parametrize("n,ell,t", SIZES,
                         ids=[f"n{n}-l{l}-t{t}" for n, l, t in SIZES])
def test_fig6_multiplicity_accuracy(benchmark, n, ell, t):
    """All-correct system: reported multiplicity >= broadcaster count,
    accepted within the broadcast superround."""

    def body():
        return run_broadcast_system(n, ell, t)

    procs, assignment = run_once(benchmark, body)
    alpha = len(assignment.group(1))
    benchmark.extra_info["broadcasters"] = alpha
    for p in procs:
        mine = [a for a in p.accepts if a.ident == 1 and a.message == "m"]
        assert mine
        assert mine[0].accepted_superround == 0  # same-superround accept
        assert mine[0].multiplicity >= alpha


def test_fig6_unforgeability_window(benchmark):
    """With f_1 Byzantine holders of identifier 1 inflating counts, every
    accepted multiplicity stays within [correct, correct + f_1]."""

    def body():
        assignment = stacked_assignment(8, 4)  # identifier 1 x 5
        group = assignment.group(1)
        byz = (group[3], group[4])  # f_1 = 2
        procs, _ = run_broadcast_system(
            8, 4, 2, byz=byz, adversary=CountInflator(), rounds=10
        )
        return procs, len(group) - len(byz), len(byz)

    procs, correct_count, f_1 = run_once(benchmark, body)
    observed = set()
    for p in procs:
        for a in p.accepts:
            if a.ident == 1 and a.message == "m":
                observed.add(a.multiplicity)
                assert correct_count <= a.multiplicity <= correct_count + f_1
    emit("Figure 6 unforgeability window",
         [("correct broadcasters", correct_count),
          ("f_1", f_1),
          ("observed multiplicities", sorted(observed))])
    assert observed  # the broadcast did go through


def test_fig6_accept_latency_series(benchmark):
    """Accepts recur every superround (the relay invariant) and the
    first accept lands in the broadcast superround."""

    def body():
        procs, _ = run_broadcast_system(6, 3, 1, rounds=12)
        rows = []
        for p in procs:
            superrounds = sorted(
                a.accepted_superround for a in p.accepts
                if a.ident == 1 and a.message == "m"
            )
            rows.append((p.identifier, superrounds[:6]))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 6 accept superrounds per process (first six)",
         [("identifier", "accept superrounds")] + rows)
    for _ident, superrounds in rows:
        assert superrounds[0] == 0
        # Echo persistence re-triggers accepts every superround.
        assert superrounds == list(range(len(superrounds)))
