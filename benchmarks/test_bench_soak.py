"""Benchmark: soak-farm throughput under sustained adversarial traffic.

The farm's perf claim is that its bookkeeping -- mixture sampling,
per-instance seed derivation, batched kernel scheduling, record
folding, and the checkpointed JSONL stream -- adds negligible overhead
on top of raw instance execution, so a soak budget is spent simulating
agreement, not orchestrating it.  This bench drives one bounded farm
run end to end, compares it against solo replays of the same stream
slice (the replay contract makes the two literally comparable), and
reports instances/second for both paths plus the streaming log's row
rate.

The floor assertion is deliberately loose
(``SOAK_BENCH_MIN_INSTANCES_PER_S``, default 50/s; set to 0 to
disable): the quick profile sustains a few hundred instances/second on
one worker, but CI machines vary widely.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit, run_once, snapshot
from repro.soak import run_instance, run_soak, sample_instance, stream_rows

PROFILE = "quick"
SEED = 2026
INSTANCES = 600
WINDOW = 150
SOLO_SAMPLE = 120


def test_soak_farm_throughput(benchmark, tmp_path):
    """One bounded farm run vs solo replays of the same stream slice."""
    log_path = tmp_path / "soak.jsonl"

    def body():
        t0 = time.perf_counter()
        outcome = run_soak(
            PROFILE, seed=SEED, instances=INSTANCES, window=WINDOW,
            log_path=str(log_path),
        )
        farm_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        solo = [
            run_instance(sample_instance(PROFILE, SEED, i))
            for i in range(SOLO_SAMPLE)
        ]
        solo_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        rows = list(stream_rows(str(log_path)))
        read_s = time.perf_counter() - t0
        return outcome, solo, rows, farm_s, solo_s, read_s

    outcome, solo, rows, farm_s, solo_s, read_s = run_once(benchmark, body)

    assert outcome.passed, f"soak bench hit violations: {outcome.summary()}"
    assert outcome.instances == INSTANCES
    # Differential check (the replay contract): the farm's logged rows
    # for the solo-replayed slice carry identical verdicts and costs.
    by_index = {
        r["index"]: r for r in rows if r["kind"] == "instance"
    }
    for i, record in enumerate(solo):
        logged = by_index[i]
        assert {k: logged[k] for k in record} == record

    farm_ips = INSTANCES / farm_s
    solo_ips = SOLO_SAMPLE / solo_s
    row_rate = len(rows) / read_s
    overhead = solo_ips / farm_ips if farm_ips else float("inf")

    emit(
        f"Soak farm throughput ({PROFILE} profile, {INSTANCES} "
        f"instances, window {WINDOW})", [
            ("path", "wall s", "instances/s"),
            ("farm (batched kernels + streamed log)",
             f"{farm_s:.2f}", f"{farm_ips:.0f}"),
            ("solo replay loop", f"{solo_s:.2f}", f"{solo_ips:.0f}"),
            ("log re-read", f"{read_s:.3f}", f"{row_rate:.0f} rows/s"),
            ("farm bookkeeping overhead", "",
             f"{(overhead - 1) * 100:+.0f}% vs solo"),
        ],
    )
    benchmark.extra_info["farm_instances_per_s"] = round(farm_ips, 1)
    benchmark.extra_info["solo_instances_per_s"] = round(solo_ips, 1)
    snapshot(
        "soak",
        {"profile": PROFILE, "instances": INSTANCES, "window": WINDOW,
         "seed": SEED},
        ops_per_s=farm_ips,
        speedup=farm_ips / solo_ips,
        extra={
            "violations": outcome.violations,
            "losses": outcome.losses,
            "messages": outcome.messages,
            "log_rows": len(rows),
            "log_rows_per_s": round(row_rate, 1),
        },
    )

    floor = float(os.environ.get("SOAK_BENCH_MIN_INSTANCES_PER_S", "50"))
    if floor > 0:
        assert farm_ips >= floor, (
            f"farm throughput {farm_ips:.0f} instances/s below the "
            f"{floor:.0f}/s floor"
        )


def test_mixture_sampling_rate(benchmark):
    """Spec sampling alone must be orders faster than execution."""

    def body():
        t0 = time.perf_counter()
        specs = [
            sample_instance(PROFILE, SEED, i) for i in range(2000)
        ]
        return specs, time.perf_counter() - t0

    specs, wall = run_once(benchmark, body)
    rate = len(specs) / wall
    assert len({s.instance_id for s in specs}) == len(specs)
    emit("Soak mixture sampling", [
        ("stage", "specs/s"),
        ("sample_instance + content id", f"{rate:.0f}"),
    ])
    benchmark.extra_info["specs_per_s"] = round(rate, 1)
    # Sampling at instance-execution speed would mean the farm spends
    # its budget planning; keep a very loose guard.
    assert rate >= 2000, f"sampling unexpectedly slow: {rate:.0f}/s"
