"""Benchmark F1: the Figure 1 scenario system (Proposition 1).

Regenerates the paper's synchronous lower-bound construction: for
``ell = 3t`` the 2n-process reference system forces a contradiction
between the three overlapping views.  The series shows, per (n, t),
which view's requirement broke when a real algorithm -- T(EIG) built
for ``ell = 3t`` -- is run inside the construction.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.adversaries.scenario import run_scenario
from repro.classic.eig import EIGSpec
from repro.core.problem import BINARY
from repro.homonyms.transform import transform_factory, transform_horizon

CASES = [(3, 1), (4, 1), (5, 1), (6, 1), (7, 2), (8, 2)]


@pytest.mark.parametrize("n,t", CASES, ids=[f"n{n}-t{t}" for n, t in CASES])
def test_fig1_scenario_contradiction(benchmark, n, t):
    spec = EIGSpec(3 * t, t, BINARY, unchecked=True)
    factory = transform_factory(spec, unchecked=True)
    horizon = transform_horizon(spec)

    def body():
        return run_scenario(n, t, factory, max_rounds=horizon)

    outcome = run_once(benchmark, body)
    broken = [v.name for v in outcome.views if not v.satisfied]
    benchmark.extra_info["broken_views"] = broken
    emit(
        f"Figure 1 scenario n={n}, t={t} (ell=3t={3*t}, big system {2*n} procs)",
        [(v.name, v.requirement, "ok" if v.satisfied else "VIOLATED", v.detail)
         for v in outcome.views],
    )
    assert outcome.contradiction_exhibited


def test_fig1_series_over_n(benchmark):
    """Sweep n at t=1: the contradiction must be exhibited everywhere."""

    def body():
        rows = []
        spec = EIGSpec(3, 1, BINARY, unchecked=True)
        factory = transform_factory(spec, unchecked=True)
        for n in range(3, 9):
            outcome = run_scenario(n, 1, factory,
                                   max_rounds=transform_horizon(spec))
            broken = [v.name for v in outcome.views if not v.satisfied]
            rows.append((n, 2 * n, ",".join(broken) or "none"))
        return rows

    rows = run_once(benchmark, body)
    emit("Figure 1 contradiction sweep (t=1)",
         [("n", "big-system size", "violated views")] + rows)
    assert all(row[2] != "none" for row in rows)
