"""Ablation A2: remove the decide relay from Figure 5.

The paper (Section 4.2, difference (3)) adds decide messages so that a
correct process sharing its identifier with a Byzantine process can
terminate without waiting for a phase its own identifier leads.  The
relay is a liveness/latency mechanism: without it each process decides
only on its own leader/ack path, so decisions arrive as a staircase --
one process per leader rotation -- and the last-decider latency
stretches from O(1) good phases to ~ell phases.
"""

from benchmarks.conftest import emit, run_once
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.ablations import no_decide_relay_factory
from repro.psync.dls_homonyms import (
    ROUNDS_PER_PHASE,
    dls_factory,
    dls_horizon,
)
from repro.sim.runner import run_agreement


def run_variant(factory_maker, extra_rounds=0):
    params = SystemParams(
        n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )
    byz = (6,)
    return run_agreement(
        params=params,
        assignment=balanced_assignment(7, 6),
        factory=factory_maker(params, BINARY),
        proposals={k: k % 2 for k in range(6)},
        byzantine=byz,
        max_rounds=dls_horizon(params, 0) + extra_rounds,
    )


def test_ablation_decide_relay_latency(benchmark):
    def body():
        full = run_variant(dls_factory)
        ablated = run_variant(no_decide_relay_factory, extra_rounds=48)
        return full, ablated

    full, ablated = run_once(benchmark, body)
    full_rounds = dict(sorted(full.verdict.decision_rounds.items()))
    ablated_rounds = dict(sorted(ablated.verdict.decision_rounds.items()))
    emit("Ablation A2: decide relay vs per-process decision rounds", [
        ("full Figure 5", full_rounds),
        ("no-relay variant", ablated_rounds),
    ])
    benchmark.extra_info["full_last"] = full.verdict.last_decision_round
    benchmark.extra_info["ablated_last"] = ablated.verdict.last_decision_round
    assert full.verdict.ok and ablated.verdict.ok

    # With the relay, everyone decides within one phase of the first
    # deciding leader; without it decisions form a staircase one leader
    # rotation apart, stretching the tail by several phases.
    spread_full = (max(full_rounds.values()) - min(full_rounds.values()))
    spread_ablated = (
        max(ablated_rounds.values()) - min(ablated_rounds.values())
    )
    assert spread_ablated >= spread_full + 2 * ROUNDS_PER_PHASE
    assert (ablated.verdict.last_decision_round
            > full.verdict.last_decision_round)

    # The staircase: consecutive deciders one phase (8 rounds) apart.
    staircase = sorted(ablated_rounds.values())
    gaps = {b - a for a, b in zip(staircase, staircase[1:])}
    assert ROUNDS_PER_PHASE in gaps
