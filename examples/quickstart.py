#!/usr/bin/env python
"""Quickstart: Byzantine agreement among homonyms in ten minutes.

Paper scenario: Figure 5 / Theorem 13 -- partially synchronous
agreement among innumerate homonyms, solvable because
``2*ell > n + 3t``.

Seven processes share six authenticated identifiers (so one identifier
has two holders -- homonyms), one process is Byzantine, the network is
partially synchronous (arbitrary message loss before an unknown
stabilisation round), and nobody can count message copies.  The
Figure 5 algorithm still reaches agreement, because
``2*ell = 12 > n + 3t = 10``.

Run:  python examples/quickstart.py
"""

from repro.adversaries.generic import RandomByzantineAdversary
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.partial import RandomDrops
from repro.sim.runner import run_agreement


def main() -> None:
    # 1. Describe the system: n processes, ell identifiers, t faults.
    params = SystemParams(
        n=7, ell=6, t=1,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=False,   # inboxes are sets: copies cannot be counted
        restricted=False,  # Byzantine processes may multi-send per round
    )
    print(f"System: {params.describe()}")

    # 2. Assign identifiers.  balanced_assignment gives identifier 1 two
    #    holders (slots 0 and 6): those two processes are homonyms.
    assignment = balanced_assignment(params.n, params.ell)
    print(f"Assignment: {assignment.describe()}")
    print(f"Homonym identifiers: {assignment.homonym_ids()}")

    # 3. Pick the Byzantine slot and everyone's proposals.  Slot 6
    #    shares identifier 1 with the correct slot 0 -- the hardest
    #    placement: its group is poisoned.
    byzantine = (6,)
    proposals = {k: k % 2 for k in range(params.n) if k not in byzantine}
    print(f"Byzantine slot: {byzantine}, proposals: {proposals}")

    # 4. Choose the network conditions: random message loss until round
    #    16, chaos from the Byzantine process throughout.
    schedule = RandomDrops(gst=16, p=0.5, seed=42)
    adversary = RandomByzantineAdversary(seed=42)

    # 5. Run the Figure 5 agreement protocol.
    result = run_agreement(
        params=params,
        assignment=assignment,
        factory=dls_factory(params, BINARY),
        proposals=proposals,
        byzantine=byzantine,
        adversary=adversary,
        drop_schedule=schedule,
        max_rounds=dls_horizon(params, gst_round=16),
    )

    # 6. Inspect the verdict: validity, agreement and termination are
    #    checked automatically against the recorded execution.
    print()
    print(result.summary())
    assert result.verdict.ok, "the paper guarantees this configuration!"
    print()
    print(f"All correct processes decided {result.verdict.agreed_value!r} "
          f"by round {result.verdict.last_decision_round}.")
    print("The homonym pair (slots 0 and 6 share identifier 1) did not "
          "stop slot 0 from deciding:",
          f"decision round {result.verdict.decision_rounds[0]}.")


if __name__ == "__main__":
    main()
