#!/usr/bin/env python
"""Ring membership for a Chord-style DHT with hashed (colliding) node IDs.

Paper scenario: the Section 1 DHT motivation (hashed identifiers
collide), handled by the Figure 5 partially synchronous protocol under
the Theorem 13 bound.

The paper's opening motivation: Pastry and Chord assume unique node
identifiers, derived in practice by hashing.  Hashes collide -- rarely
by accident, deliberately under attack -- and the moment they do, every
protocol built on "one ID = one node" silently loses its footing.

This example builds a miniature ring of storage nodes whose identifiers
are derived by hashing their (possibly duplicated) join keys into a tiny
identifier space, then uses the homonym-aware Figure 5 protocol to run
a *membership reconfiguration vote*: should the ring evict the suspect
shard and re-replicate?  The library decides up front -- from (n, ℓ, t)
alone -- whether the vote is safe to run, runs it through partition-
style network weather plus a Byzantine node, and applies the decision.

Run:  python examples/dht_membership.py
"""

import hashlib

from repro.adversaries.generic import EquivocatorAdversary
from repro.analysis.bounds import solvable
from repro.core.identity import IdentityAssignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import AgreementProblem
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.partial import PartitionSchedule
from repro.sim.runner import run_agreement

#: The ring's nodes: (node name, join key).  Two nodes were provisioned
#: from the same image and share a join key -- a real-world collision.
NODES = [
    ("node-a", "key-7f31"),
    ("node-b", "key-90aa"),
    ("node-c", "key-41c2"),
    ("node-d", "key-7f31"),   # cloned image: collides with node-a!
    ("node-e", "key-c55e"),
    ("node-f", "key-08d1"),
    ("node-g", "key-63b7"),
]

ID_SPACE = 128  # big enough that only the deliberate clone collides here;
                # shrink it to watch accidental collisions push the ring
                # below the Theorem 13 bound and the vote refuse itself
VOTE = AgreementProblem(("keep", "evict"))


def ring_identifier(join_key: str) -> int:
    """Chord-style: hash the key into the identifier space."""
    digest = hashlib.sha256(join_key.encode()).digest()
    return int.from_bytes(digest[:4], "big") % ID_SPACE + 1


def main() -> None:
    raw_ids = [ring_identifier(key) for _, key in NODES]
    # Compact to a dense 1..ell space (the library's identifier format).
    distinct = sorted(set(raw_ids))
    remap = {old: new for new, old in enumerate(distinct, start=1)}
    ids = tuple(remap[i] for i in raw_ids)
    ell = len(distinct)
    n, t = len(NODES), 1

    print("DHT ring membership vote")
    print("========================")
    for (name, key), ident in zip(NODES, ids):
        print(f"  {name}: join key {key} -> ring identifier {ident}")
    assignment = IdentityAssignment(ell, ids)
    homonyms = assignment.homonym_ids()
    print(f"\n{n} nodes, {ell} distinct identifiers; "
          f"collided identifiers: {homonyms or 'none'}")

    params = SystemParams(
        n=n, ell=ell, t=t, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )
    safe = solvable(params)
    print(f"Membership vote safe per Theorem 13? 2*{ell} > {n} + 3*{t} "
          f"-> {safe}")
    if not safe:
        print("Refusing to run the vote -- add identifiers or nodes.")
        return

    # node-g is compromised and two-faced; the ring is also split by a
    # flaky switch for the first 16 rounds.
    byzantine = (6,)
    factory = dls_factory(params, VOTE)
    proposals = {}
    for k in range(n):
        if k in byzantine:
            continue
        # Nodes that observed the suspect shard's corruption vote evict.
        proposals[k] = "evict" if k in (0, 2, 3, 5) else "keep"
    weather = PartitionSchedule(16, block_a=[0, 1, 2], block_b=[3, 4, 5])

    result = run_agreement(
        params=params,
        assignment=assignment,
        factory=factory,
        proposals=proposals,
        byzantine=byzantine,
        adversary=EquivocatorAdversary(factory, "keep", "evict"),
        drop_schedule=weather,
        max_rounds=dls_horizon(params, 16),
    )

    print(f"\n{result.verdict.summary()}")
    assert result.verdict.ok
    decision = result.verdict.agreed_value
    print(f"\nRing decision: {decision!r} "
          f"(by round {result.verdict.last_decision_round}, through a "
          f"16-round partition, a collision and a two-faced node).")
    if decision == "evict":
        print("-> shard evicted; re-replication scheduled.")
    else:
        print("-> shard kept; corruption reports dismissed.")


if __name__ == "__main__":
    main()
