#!/usr/bin/env python
"""Identifier collisions in a DHT: surviving what breaks classic BFT.

Paper scenario: Section 1's break-the-classics motivation -- classical
quorum arithmetic vs the homonym-aware Figure 5 protocol on the same
colliding-identifier cluster (Theorem 13 bound).

The paper's first motivation: systems like Pastry or Chord assume every
node has a unique, unforgeable identifier.  If a key leaks or two nodes
are provisioned with the same identity, a classical BFT deployment's
*quorum arithmetic* is silently wrong: it waits for acknowledgements
from ``n - t`` distinct identities that simply do not exist.

This example runs the same 8-node partially synchronous cluster twice.
Reality: nodes 0 and 1 collided on identifier 1 (7 distinct identifiers
exist), and one node is Byzantine.

* **Naive deployment** -- the protocol is configured for the 8 unique
  identities the operator *believes* exist.  Its identifier quorums
  (``ell - t = 7``) can never be met by the 6 correct distinct
  identifiers: the run loses liveness and times out.
* **Homonym-aware deployment** -- the same protocol configured for the
  7 identifiers that actually exist.  ``2*ell = 14 > n + 3t = 11``, so
  Theorem 13 applies collision and all: it decides.

Run:  python examples/sybil_collision.py
"""

from repro.adversaries.generic import RandomByzantineAdversary
from repro.core.identity import IdentityAssignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.runner import make_processes, run_execution

N = 8
REAL_IDS = (1, 1, 2, 3, 4, 5, 6, 7)  # nodes 0 and 1 collided
BYZANTINE = (7,)  # the holder of identifier 7


def run_cluster(believed_ell: int):
    """Run the cluster with the protocol configured for `believed_ell`
    identifiers, against the *real* assignment of 7."""
    believed = SystemParams(
        n=N, ell=believed_ell, t=1,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
    )
    # Reality: 7 distinct identifiers, whatever the operator believes.
    reality = IdentityAssignment(7, REAL_IDS)
    proposals = {k: k % 2 for k in range(N) if k not in BYZANTINE}

    if believed_ell == 7:
        factory = dls_factory(believed, BINARY)
    else:
        # The naive config believes ell = 8; processes are constructed
        # with the wrong identifier count (their quorums are ell - t =
        # 7 identifiers).  `unchecked` because nothing about this
        # deployment is sound.
        factory = dls_factory(believed, BINARY, unchecked=True)

    # Build the processes with their *real* identifiers but the believed
    # protocol parameters.
    engine_params = SystemParams(
        n=N, ell=7, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )
    processes = make_processes(factory, reality, proposals, BYZANTINE)
    return run_execution(
        params=engine_params,
        assignment=reality,
        processes=processes,
        byzantine=BYZANTINE,
        adversary=RandomByzantineAdversary(seed=5),
        max_rounds=dls_horizon(engine_params, 0) + 24,
    )


def main() -> None:
    print(f"Cluster of {N} nodes; real identifiers {REAL_IDS}")
    print(f"(nodes 0 and 1 collided on identifier 1; node {BYZANTINE[0]} "
          f"is Byzantine)\n")

    naive = run_cluster(believed_ell=8)
    print("Naive deployment (believes 8 unique identities, quorum = 7 ids):")
    print(" ", naive.verdict.summary().replace("\n", "\n  "))
    assert naive.verdict.violated("termination"), (
        "the quorum of 7 distinct identifiers is unreachable: "
        "6 correct identifiers exist"
    )

    aware = run_cluster(believed_ell=7)
    print("\nHomonym-aware deployment (configured for the real 7 ids):")
    print(" ", aware.verdict.summary().replace("\n", "\n  "))
    assert aware.verdict.ok, "Theorem 13 guarantees this configuration"

    print(
        "\nSame nodes, same collision, same Byzantine process: counting\n"
        "identifiers instead of nodes is the difference between a wedged\n"
        f"cluster and a decision "
        f"({aware.verdict.agreed_value!r} by round "
        f"{aware.verdict.last_decision_round})."
    )


if __name__ == "__main__":
    main()
