#!/usr/bin/env python
"""Privacy through homonyms: agreeing under domain-name identifiers.

Paper scenario: the Section 1 privacy motivation (users sign with a
shared domain name), solved with the Figure 5 protocol and sized with
the Theorem 13 bound ``2*ell > n + 3t``.

The paper's motivating scenario (Section 1): users keep some anonymity
by signing messages only with their *domain name*, not a personal key.
Several users of one domain become homonyms -- observers see that
"someone at example.org" participates, never who.

This example models three organisations of different sizes running a
partially synchronous agreement on a binary proposal ("adopt the new
protocol version?") with one compromised machine, and shows how to pick
the smallest safe number of domains with the library's bound
calculators.

Run:  python examples/domain_privacy.py
"""

from repro.analysis.bounds import min_identifiers, solvable
from repro.core.identity import assignment_from_sizes
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.adversaries.generic import EquivocatorAdversary
from repro.sim.partial import SilenceUntil
from repro.sim.runner import run_agreement

#: Domain -> number of participating users.  13 users, 9 domains: the
#: big domains hide their users among homonyms.
DOMAINS = {
    "research.example.org": 3,
    "ops.example.org": 3,
    "lab.example.net": 1,
    "www.example.net": 1,
    "a.example.com": 1,
    "b.example.com": 1,
    "c.example.com": 1,
    "d.example.com": 1,
    "e.example.com": 1,
}


def main() -> None:
    names = list(DOMAINS)
    sizes = {i + 1: DOMAINS[name] for i, name in enumerate(names)}
    assignment = assignment_from_sizes(sizes)
    n, ell, t = assignment.n, assignment.ell, 1

    print(f"{n} users across {ell} domains, tolerating t={t} compromise")
    for ident, name in enumerate(names, start=1):
        members = assignment.group(ident)
        tag = "homonyms" if len(members) > 1 else "sole user"
        print(f"  id {ident} = {name:24s} {len(members)} user(s) ({tag})")

    params = SystemParams(
        n=n, ell=ell, t=t, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )
    print(f"\nSolvable per Theorem 13 (2*ell > n + 3t)? "
          f"{2 * ell} > {n + 3 * t} -> {solvable(params)}")
    fewest = min_identifiers(
        n, t, Synchrony.PARTIALLY_SYNCHRONOUS, numerate=False, restricted=False
    )
    print(f"Fewest domains that would still work for {n} users: {fewest}")

    # The compromised machine: a user inside the biggest domain, so its
    # whole domain group is poisoned; it plays both sides of the vote.
    byzantine = (assignment.group(1)[0],)
    proposals = {
        k: (1 if assignment.identifier_of(k) <= 4 else 0)
        for k in range(n) if k not in byzantine
    }
    adversary = EquivocatorAdversary(
        dls_factory(params, BINARY), proposal_even=0, proposal_odd=1
    )

    result = run_agreement(
        params=params,
        assignment=assignment,
        factory=dls_factory(params, BINARY),
        proposals=proposals,
        byzantine=byzantine,
        adversary=adversary,
        drop_schedule=SilenceUntil(16),  # a rough network start
        max_rounds=dls_horizon(params, 16),
    )
    print()
    print(result.verdict.summary())
    assert result.verdict.ok
    decided = result.verdict.agreed_value
    print(f"\nThe federation decided {decided!r} -- and the two correct "
          f"users of {names[0]} stayed hidden in their domain crowd.")


if __name__ == "__main__":
    main()
