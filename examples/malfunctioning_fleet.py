#!/usr/bin/env python
"""Restricted faults in practice: a fleet of flaky-but-not-malicious nodes.

Paper scenario: Section 5 / Figure 7 and Theorems 14/15 -- restricted
Byzantine senders plus numerate receivers make ``ell > t`` sufficient.

The paper's Section 5 observation: if Byzantine processes are just
*malfunctioning* machines -- sending wrong values, but physically unable
to inject more traffic than a healthy node (one message per recipient
per round) -- then ``t + 1`` identifiers suffice, provided receivers can
count message copies.

Scenario: a rack of 10 collectors shares 3 hardware-type identifiers
(identifiers = device model, not device id: the fleet owner only
provisions per-model signing keys).  Up to 2 devices may glitch.  With
the classical theory you would need 2*ell > n + 3t, i.e. 9 distinct
keys; with the restricted model, 3 suffice -- Figure 7 in action.

Run:  python examples/malfunctioning_fleet.py
"""

from repro.adversaries.generic import CrashAdversary, EquivocatorAdversary
from repro.analysis.bounds import restriction_gain
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.restricted import restricted_factory, restricted_horizon
from repro.sim.partial import RandomDrops
from repro.sim.runner import run_agreement

N_DEVICES = 10
N_MODELS = 3  # identifiers: one signing key per hardware model
T_GLITCHES = 2


def main() -> None:
    unrestricted_need, restricted_need = restriction_gain(N_DEVICES, T_GLITCHES)
    print(f"Fleet: {N_DEVICES} devices, {T_GLITCHES} may glitch.")
    print(f"Keys needed if glitches could flood  : {unrestricted_need}")
    print(f"Keys needed for restricted glitches  : {restricted_need}"
          f" (we provision {N_MODELS})")

    params = SystemParams(
        n=N_DEVICES, ell=N_MODELS, t=T_GLITCHES,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=True,     # collectors count copies per model key
        restricted=True,   # glitchy devices cannot out-talk healthy ones
    )
    assignment = balanced_assignment(N_DEVICES, N_MODELS)
    print(f"\nModel assignment: {assignment.describe()}")

    glitchy = (8, 9)
    # The fleet votes on "promote firmware B?": sensors disagree 4 vs 4.
    proposals = {k: k % 2 for k in range(N_DEVICES) if k not in glitchy}

    for name, adversary in [
        ("two-faced glitch", EquivocatorAdversary(
            restricted_factory(params, BINARY))),
        ("boot-loop glitch", CrashAdversary(
            restricted_factory(params, BINARY), crash_round=5, proposal=1)),
    ]:
        result = run_agreement(
            params=params,
            assignment=assignment,
            factory=restricted_factory(params, BINARY),
            proposals=proposals,
            byzantine=glitchy,
            adversary=adversary,
            drop_schedule=RandomDrops(gst=12, p=0.3, seed=7),
            max_rounds=restricted_horizon(params, 12),
        )
        print(f"\n[{name}] {result.verdict.summary()}")
        assert result.verdict.ok

    print(f"\nAgreement reached with only {N_MODELS} keys for "
          f"{N_DEVICES} devices -- the restricted-Byzantine dividend.")


if __name__ == "__main__":
    main()
