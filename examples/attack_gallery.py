#!/usr/bin/env python
"""Attack gallery: every lower bound of the paper, executed.

Paper scenario: the three impossibility constructions -- the Figure 1
scenario (Proposition 1), the Figure 4 partition (Proposition 4) and
the Lemma 17 mirror scan (Proposition 16) -- each run below its bound.

Each section builds the paper's impossibility construction, runs a real
algorithm configured *below* its bound, and prints the machine-checked
violation:

1. Figure 1 scenario (Proposition 1): synchronous, ell = 3t.
2. Figure 4 partition (Proposition 4): partially synchronous,
   2*ell <= n + 3t -- the run where correct processes decide 0 AND 1.
3. Lemma 17 mirror (Proposition 16): restricted + numerate, ell <= t --
   indistinguishability and a multivalence witness.
4. The "more correct processes hurt" curiosity: t=1, ell=4 works with
   n=4 and breaks with n=5.

Run:  python examples/attack_gallery.py
"""

from repro.adversaries.mirror import mirror_chain_scan
from repro.adversaries.partition import run_partition_attack
from repro.adversaries.scenario import run_scenario
from repro.analysis.bounds import solvable
from repro.classic.eig import EIGSpec
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.psync.dls_homonyms import DLSHomonymProcess, dls_horizon
from repro.psync.restricted import restricted_factory, restricted_horizon

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def figure_1() -> None:
    banner("1. Figure 1 scenario: synchronous agreement needs ell > 3t")
    n, t = 5, 1
    spec = EIGSpec(3 * t, t, BINARY, unchecked=True)
    outcome = run_scenario(
        n, t, transform_factory(spec, unchecked=True),
        max_rounds=transform_horizon(spec),
    )
    print(f"T(EIG) built for ell = 3t = {3 * t}, embedded in the 2n = {2 * n}"
          f"-process reference system:")
    print(outcome.summary())
    assert outcome.contradiction_exhibited


def figure_4() -> None:
    banner("2. Figure 4 partition: partial synchrony needs 2*ell > n + 3t")
    n, ell, t = 9, 6, 1
    params = SystemParams(n=n, ell=ell, t=t, synchrony=PSYNC)
    print(f"n={n}, ell={ell}, t={t}: 2*ell = {2 * ell} <= n + 3t = {n + 3 * t}"
          f" -> predicted unsolvable: {not solvable(params)}")

    def factory(ident, value):
        return DLSHomonymProcess(params, BINARY, ident, value, unchecked=True)

    outcome = run_partition_attack(
        n, ell, t, factory, reference_rounds=dls_horizon(params, 0)
    )
    print(outcome.summary())
    gamma = outcome.gamma
    print(f"  wing W0 {outcome.w0} decided "
          f"{sorted({gamma.processes[k].decision for k in outcome.w0})}")
    print(f"  wing W1 {outcome.w1} decided "
          f"{sorted({gamma.processes[k].decision for k in outcome.w1})}")
    assert outcome.attack_succeeded


def lemma_17() -> None:
    banner("3. Lemma 17 mirror: restricted+numerate still needs ell > t")
    params = SystemParams(n=4, ell=1, t=1, synchrony=PSYNC,
                          numerate=True, restricted=True)
    factory = restricted_factory(params, BINARY, unchecked=True)
    outcome = mirror_chain_scan(
        params, factory, max_rounds=restricted_horizon(params, 0)
    )
    print("Anonymous system (ell = 1 <= t): one Byzantine homonym mirrors a "
          "correct process with the opposite input.")
    print(outcome.summary())
    assert outcome.impossibility_evidence


def more_correct_hurts() -> None:
    banner("4. Adding CORRECT processes can break agreement (t=1, ell=4)")
    for n in (4, 5):
        params = SystemParams(n=n, ell=4, t=1, synchrony=PSYNC)
        verdict = "solvable" if solvable(params) else "UNSOLVABLE"
        print(f"  n={n}: 2*ell = 8 vs n + 3t = {n + 3} -> {verdict}")
    print("The extra processes are correct -- but they dilute the"
          " sole-owner identifiers Lemma 7's quorum intersection needs.")


def main() -> None:
    figure_1()
    figure_4()
    lemma_17()
    more_correct_hurts()
    print("\nAll four lower bounds exhibited.")


if __name__ == "__main__":
    main()
