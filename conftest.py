"""Repository-level pytest configuration: the ``exhaustive`` tier.

Tier-1 (``pytest -x -q``, what every change must keep green) runs the
fast subset.  Tests marked ``exhaustive`` (alias ``slow``) -- the
full-product small-scope sweeps and the explorer tightness matrix --
are skipped by default and enabled with ``--exhaustive``
(``make test-all``).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--exhaustive",
        action="store_true",
        default=False,
        help="also run tests marked exhaustive/slow "
             "(full small-scope sweeps; see `make test-all`)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "exhaustive: exhaustive small-scope sweep; excluded from tier-1, "
        "run via --exhaustive / make test-all",
    )
    config.addinivalue_line(
        "markers", "slow: alias of exhaustive"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--exhaustive"):
        return
    skip = pytest.mark.skip(
        reason="exhaustive tier: run with --exhaustive (make test-all)"
    )
    for item in items:
        if "exhaustive" in item.keywords or "slow" in item.keywords:
            item.add_marker(skip)
