# Development targets. Everything runs with src/ on the path; no
# third-party runtime dependencies (pytest + pytest-benchmark for the
# suites).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all bench-quick bench-fabric bench-delay bench-explore \
	docs-check campaign explore-frontier clean

## tier-1: docs consistency plus the fast test suite (the bar every
## change must clear). docs-check runs first so a stale README section
## fails fast, before the two-minute suite. Tests marked `exhaustive`
## (full small-scope sweeps, the explorer tightness matrix) are skipped
## here; `make test-all` runs everything.
test: docs-check
	$(PYTHON) -m pytest -x -q

## the whole suite including the exhaustive tier
test-all: docs-check
	$(PYTHON) -m pytest -q --exhaustive

## the fast benchmark slice: Table 1 regeneration + campaign throughput
bench-quick:
	$(PYTHON) -m pytest benchmarks/test_bench_table1.py \
	    benchmarks/test_bench_campaign.py -q -s

## message-fabric engine throughput vs the pre-fabric reference loop
bench-fabric:
	$(PYTHON) -m pytest benchmarks/test_bench_fabric.py -q -s

## delay models on the kernel vs the legacy per-message tick loop
bench-delay:
	$(PYTHON) -m pytest benchmarks/test_bench_delay_kernel.py -q -s

## strategy-explorer pruning: measured reduction vs the raw tree
bench-explore:
	$(PYTHON) -m pytest benchmarks/test_bench_explore.py -q -s

## README sections + intra-repo doc links
docs-check:
	$(PYTHON) tools/docs_check.py

## run the quick Table 1 campaign on all local cores
campaign:
	$(PYTHON) -m repro campaign --workers 4 --resume

## machine-check the Table 1 tightness frontier via the explorer
explore-frontier:
	$(PYTHON) -m repro campaign --explore --workers 4 --resume

clean:
	rm -rf .campaign-cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
