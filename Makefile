# Development targets. Everything runs with src/ on the path; no
# third-party runtime dependencies (pytest + pytest-benchmark for the
# suites).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all lint bench-quick bench-fabric bench-delay \
	bench-explore bench-atlas bench-soak bench-snapshot bench-diff \
	docs-check api-docs campaign explore-frontier atlas-quick atlas \
	atlas-shard-smoke soak-smoke clean

## tier-1: docs consistency, the invariant linter, then the fast test
## suite (the bar every change must clear). The cheap static gates run
## first so a stale README section or an undigested oracle edit fails
## fast, before the two-minute suite. Tests marked `exhaustive` (full
## small-scope sweeps, the explorer tightness matrix) are skipped
## here; `make test-all` runs everything.
test: docs-check lint
	$(PYTHON) -m pytest -x -q

## the whole suite including the exhaustive tier
test-all: docs-check lint
	$(PYTHON) -m pytest -q --exhaustive

## the AST-based invariant linter: determinism, oracle freezing, and
## cache-schema discipline over the package, tests, benchmarks, and
## tooling (see docs/ARCHITECTURE.md "Static analysis").
lint:
	$(PYTHON) -m tools.reprolint src tests benchmarks tools

## the fast benchmark slice: Table 1 regeneration + campaign throughput
bench-quick:
	$(PYTHON) -m pytest benchmarks/test_bench_table1.py \
	    benchmarks/test_bench_campaign.py -q -s

## message-fabric engine throughput vs the pre-fabric reference loop
bench-fabric:
	$(PYTHON) -m pytest benchmarks/test_bench_fabric.py -q -s

## delay models on the kernel vs the legacy per-message tick loop
bench-delay:
	$(PYTHON) -m pytest benchmarks/test_bench_delay_kernel.py -q -s

## strategy-explorer pruning: measured reduction vs the raw tree
bench-explore:
	$(PYTHON) -m pytest benchmarks/test_bench_explore.py -q -s

## atlas evidence fusion + streaming-log throughput
bench-atlas:
	$(PYTHON) -m pytest benchmarks/test_bench_atlas.py -q -s

## soak-farm throughput: batched kernels + streamed log vs solo replays
bench-soak:
	$(PYTHON) -m pytest benchmarks/test_bench_soak.py -q -s

## the reference-comparison benches, with machine-readable
## BENCH_<topic>.json snapshots written to bench-snapshots/
bench-snapshot:
	BENCH_SNAPSHOT_DIR=bench-snapshots $(PYTHON) -m pytest \
	    benchmarks/test_bench_fabric.py \
	    benchmarks/test_bench_delay_kernel.py \
	    benchmarks/test_bench_campaign.py \
	    benchmarks/test_bench_soak.py \
	    benchmarks/test_bench_scaling.py \
	    benchmarks/test_bench_atlas.py \
	    benchmarks/test_bench_explore.py -q -s

## diff two (or more) BENCH_<topic>.json snapshot directories, oldest
## first, and fail on >MAX_REGRESS% ops/s regression:
##   make bench-diff BASE=archived-snapshots NEW=bench-snapshots
BASE ?= bench-snapshots
NEW ?= bench-snapshots
MAX_REGRESS ?= 25
bench-diff:
	$(PYTHON) tools/bench_diff.py $(BASE) $(NEW) \
	    --max-regress $(MAX_REGRESS)

## README sections + intra-repo doc links + API.md staleness
docs-check:
	$(PYTHON) tools/docs_check.py
	$(PYTHON) tools/gen_api_docs.py --check

## regenerate docs/API.md from the public docstrings
api-docs:
	$(PYTHON) tools/gen_api_docs.py

## run the quick Table 1 campaign on all local cores
campaign:
	$(PYTHON) -m repro campaign --workers 4 --resume

## machine-check the Table 1 tightness frontier via the explorer
explore-frontier:
	$(PYTHON) -m repro campaign --explore --workers 4 --resume

## the small-lattice atlas sweep (what CI smokes and uploads)
atlas-quick:
	$(PYTHON) -m repro atlas --quick --workers 4 \
	    --markdown atlas.md --json atlas.json

## the sharded atlas pipeline end to end: 3 shard sweeps over a shared
## unit cache, deterministic merge, byte-compare against an unsharded
## sweep, incremental render, and a query-service smoke (what the CI
## atlas-shard-smoke job runs and uploads)
atlas-shard-smoke:
	for i in 0 1 2; do \
	    $(PYTHON) -m repro atlas --quick --shard $$i/3 \
	        --cache-dir .atlas-cache --resume || exit 1; \
	done
	$(PYTHON) -m repro atlas merge atlas-0-of-3.jsonl \
	    atlas-1-of-3.jsonl atlas-2-of-3.jsonl --out atlas.jsonl
	$(PYTHON) -m repro atlas --quick --log atlas-unsharded.jsonl \
	    --cache-dir .atlas-cache --resume
	cmp atlas.jsonl atlas-unsharded.jsonl
	$(PYTHON) -m repro atlas render --log atlas.jsonl \
	    --markdown atlas.md --json atlas.json
	$(PYTHON) tools/atlas_service_smoke.py atlas.jsonl

## the default atlas sweep, resumable, on all local cores
atlas:
	$(PYTHON) -m repro atlas --workers 4 --resume \
	    --markdown atlas.md --json atlas.json

## the 10k-instance soak smoke (what CI runs and uploads)
soak-smoke:
	$(PYTHON) -m repro soak --quick --workers 4 --resume \
	    --report soak-report.json

clean:
	rm -rf .campaign-cache .atlas-cache .soak-cache .pytest_cache \
	    bench-snapshots
	rm -f atlas.jsonl atlas.md atlas.json soak.jsonl soak-report.json
	rm -f atlas-*-of-*.jsonl atlas-unsharded.jsonl atlas.jsonl.cursor.json
	find . -name __pycache__ -type d -exec rm -rf {} +
