"""Setup shim.

The environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
This shim lets ``pip install -e . --no-use-pep517`` (and plain
``python setup.py develop``) work.

Metadata is declared here rather than in a ``pyproject.toml`` because
the baked-in toolchain predates reliable PEP 621 editable support.
numpy is deliberately an *extra* (``repro[fast]``), not a hard
dependency: every simulation path has a pure-Python fallback
(see ``repro.sim.fabric``), selected automatically at import, and the
``REPRO_NO_NUMPY=1`` CI leg keeps that fallback honest.
"""

from setuptools import find_packages, setup

setup(
    name="repro-homonyms",
    version="0.9.0",
    description=(
        "Reproduction of Byzantine agreement with homonyms "
        "(Delporte-Gallet et al., PODC 2011)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        # Array delivery fabric: ~20x round throughput at n >= 256.
        # Optional -- without it the scalar path produces byte-identical
        # results, just slower at large n.
        "fast": ["numpy"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
